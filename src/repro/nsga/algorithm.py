"""The NSGA-II main loop.

The algorithm follows Deb et al. (2002) with the implementation choices of
the paper's Section IV-A: explicit filter-mask genomes, one-point crossover
with probability ``pc``, the four pixel mutation operators with probability
``pm`` and window size ``w``, an initial population of Gaussian masks plus
the all-zero mask, and Pareto-sorted binary tournament selection.

Evaluation pipeline
-------------------

Each generation's unevaluated individuals flow through one batched pass:

1. a **keyed evaluation cache** ((fidelity key, genome digest) → objective
   vector) answers genomes that were already evaluated this run *at the
   current fidelity* — duplicated elites and no-op offspring never
   re-query the detector, and approximate vectors never leak into exact
   requests;
2. the remaining genomes are stacked and handed to the objective function's
   ``evaluate_population`` fast path when it has one (one vectorised
   detector pass for the whole population), with a sequential per-genome
   fallback otherwise.

Both paths are bit-identical by construction (the parity test suite
enforces it), so ``NSGAConfig.batch_evaluation`` only changes speed, never
results.  ``NSGAResult.num_evaluations`` keeps its historical meaning — the
number of objective vectors requested — while ``NSGAResult.cache_hits``
counts how many of those the cache answered without a detector query.

The genome-keyed evaluation cache composes with the clean-scene activation
cache of the incremental inference path: the former answers *repeated
genomes* from their digest, the latter makes *fresh genomes* cheap by
recomputing only each mask's dirty region against cached clean
activations.  The genetic operators propagate an O(1) dirty-region bound
per offspring (``Individual.metadata["dirty_bound"]``) that the batch
evaluator uses to cap its nonzero scans; bounds never enter cache keys
because they never change objective values.
"""

from __future__ import annotations

import hashlib
import inspect
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

import numpy as np

from repro.nn.incremental import bbox_union
from repro.nsga.crossover import one_point_crossover_lineage
from repro.nsga.crowding import crowding_distance
from repro.nsga.individual import Individual
from repro.nsga.initialization import InitializationConfig, initialize_population
from repro.nsga.mutation import (
    IntensityAnnealing,
    MutationConfig,
    mutate_tracked_lineage,
)
from repro.nsga.selection import binary_tournament
from repro.nsga.sorting import fast_non_dominated_sort

#: An objective function maps a genome to a vector of minimised objectives.
ObjectiveFunction = Callable[[np.ndarray], np.ndarray]

#: Optional constraint applied to every genome (e.g. zero out the left half).
GenomeConstraint = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class NSGAConfig:
    """NSGA-II parametrisation (paper Table II).

    Attributes
    ----------
    num_iterations:
        Number of generations (paper: 100).
    population_size:
        Number of individuals (paper: 101).
    crossover_probability:
        Probability of applying one-point crossover to a parent pair
        (paper: pc = 0.5).
    mutation:
        Mutation configuration (paper: pm = 0.45, window 1 %).
    initialization:
        Initial-population configuration; its ``population_size`` is kept in
        sync with this config's value.
    seed:
        Seed of the random generator driving the evolutionary process.
    batch_evaluation:
        Evaluate each generation through the objective function's
        ``evaluate_population`` fast path when available (default).  The
        sequential path produces bit-identical results; this switch exists
        for parity testing and for objective functions whose batch path is
        not profitable.
    evaluation_cache:
        Reuse objective vectors for genomes already evaluated during this
        run (default).  The objective function must be deterministic in the
        genome — true for all evaluators in this repository.
    annealing:
        Optional mutation-intensity schedule
        (:class:`~repro.nsga.mutation.IntensityAnnealing`).  ``None``
        (default) keeps the constant ``mutation.window_fraction`` and the
        exact historical RNG draw stream.
    fast_search:
        Run the evolutionary search at an approximate evaluation fidelity
        and re-score at exact fidelity (two-phase bounded-error search).
        Requires an objective function exposing ``set_fidelity``; the final
        population is always re-evaluated bit-exactly, so the returned
        objective vectors match a from-scratch exact evaluation of the same
        genomes.  Default off — the default path is bit- and RNG-identical
        to previous releases.
    search_fidelity:
        Name of the approximate fidelity preset used during the search
        phase when ``fast_search`` is on (see
        ``repro.detectors.fidelity.FIDELITY_PRESETS``).
    rescore_every:
        When positive and ``fast_search`` is on, additionally re-score the
        surviving population at exact fidelity every this-many generations
        (periodic drift correction).  0 (default) re-scores only at the
        end.
    """

    num_iterations: int = 100
    population_size: int = 101
    crossover_probability: float = 0.5
    mutation: MutationConfig = field(default_factory=MutationConfig)
    initialization: InitializationConfig = field(default_factory=InitializationConfig)
    seed: int = 0
    batch_evaluation: bool = True
    evaluation_cache: bool = True
    annealing: IntensityAnnealing | None = None
    fast_search: bool = False
    search_fidelity: str = "windowed"
    rescore_every: int = 0

    def __post_init__(self) -> None:
        if self.num_iterations < 0:
            raise ValueError("num_iterations must be non-negative")
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if not 0.0 <= self.crossover_probability <= 1.0:
            raise ValueError("crossover_probability must be in [0, 1]")
        if self.rescore_every < 0:
            raise ValueError("rescore_every must be non-negative")

    @staticmethod
    def paper_defaults(seed: int = 0) -> "NSGAConfig":
        """The exact configuration of Table II."""
        return NSGAConfig(
            num_iterations=100,
            population_size=101,
            crossover_probability=0.5,
            mutation=MutationConfig(probability=0.45, window_fraction=0.01),
            seed=seed,
        )


@dataclass
class NSGAResult:
    """Outcome of an NSGA-II run.

    ``num_evaluations`` counts requested objective vectors (initial
    population plus one per offspring, the classic NSGA-II accounting);
    ``cache_hits`` counts how many of those the evaluation cache served.
    The number of actual objective-function queries is therefore
    ``num_evaluations - cache_hits`` (:attr:`num_queries`).
    """

    population: list[Individual]
    fronts: list[list[int]]
    history: list[dict] = field(default_factory=list)
    num_evaluations: int = 0
    cache_hits: int = 0
    #: Run-level incremental-inference counters (delta hits/misses and the
    #: dirty-area ratio) when the objective function exposes them; ``None``
    #: for objective functions without an incremental path.
    incremental: dict | None = None

    @property
    def num_queries(self) -> int:
        """Objective-function evaluations actually executed (non-cached)."""
        return self.num_evaluations - self.cache_hits

    @property
    def pareto_front(self) -> list[Individual]:
        """Rank-1 individuals of the final population."""
        if not self.fronts:
            return []
        return [self.population[i] for i in self.fronts[0]]

    def objectives_matrix(self) -> np.ndarray:
        """All final objective vectors stacked, shape (pop, num_objectives)."""
        return np.stack([ind.objectives for ind in self.population], axis=0)


class NSGAII:
    """NSGA-II optimiser over filter-mask genomes.

    Parameters
    ----------
    objective_function:
        Maps a genome to a minimised objective vector.
    genome_shape:
        Shape of the genomes (for the attack: the image shape).
    config:
        Algorithm parametrisation.
    constraint:
        Optional projection applied to every genome after initialisation,
        crossover and mutation (used for the paper's "perturb only the
        right half" restriction).
    callback:
        Optional per-generation callback receiving ``(generation, population)``.
    """

    def __init__(
        self,
        objective_function: ObjectiveFunction,
        genome_shape: tuple[int, ...],
        config: NSGAConfig | None = None,
        constraint: Optional[GenomeConstraint] = None,
        callback: Optional[Callable[[int, list[Individual]], None]] = None,
    ) -> None:
        self.objective_function = objective_function
        self.genome_shape = tuple(genome_shape)
        self.config = config if config is not None else NSGAConfig()
        self.constraint = constraint
        self.callback = callback
        self.rng = np.random.default_rng(self.config.seed)
        self.num_evaluations = 0
        self.cache_hits = 0
        # The evaluation cache is keyed by (fidelity key, genome digest):
        # objective vectors computed at an approximate fidelity must never
        # answer exact-fidelity requests (or vice versa), so each fidelity
        # gets its own namespace.  The default exact-only run uses a single
        # constant key and behaves exactly as before.
        self._fidelity_key: str = "exact"
        self._cache: dict[tuple[str, bytes], np.ndarray] = {}
        self._fidelity_setter = getattr(objective_function, "set_fidelity", None)
        if self.config.fast_search and not callable(self._fidelity_setter):
            raise ValueError(
                "fast_search requires an objective function with a "
                "set_fidelity method (e.g. ButterflyObjectives); "
                f"{type(objective_function).__name__} has none"
            )
        self._batch_evaluator = (
            getattr(objective_function, "evaluate_population", None)
            if self.config.batch_evaluation
            else None
        )
        # Evaluators that understand dirty-region bounds (the incremental
        # inference path) receive the O(1) bounds the genetic operators
        # propagate in Individual.metadata; bounds only cap the nonzero
        # scans, they never change objective values.
        self._batch_accepts_bounds = False
        # Evaluators with a cross-generation delta-reuse path additionally
        # accept per-genome ancestry records (own fingerprint, parent
        # fingerprint and a bound on the child-vs-parent diff); ancestry
        # only redirects which cached activations are spliced, the exact
        # diff is always rescanned, so results never change.
        self._batch_accepts_ancestry = False
        if self._batch_evaluator is not None:
            try:
                parameters = inspect.signature(self._batch_evaluator).parameters
            except (TypeError, ValueError):
                parameters = {}
            self._batch_accepts_bounds = "dirty_bounds" in parameters
            self._batch_accepts_ancestry = "ancestry" in parameters

    def _apply_constraint(self, genome: np.ndarray) -> np.ndarray:
        if self.constraint is None:
            return genome
        return self.constraint(genome)

    @staticmethod
    def _genome_key(genome: np.ndarray) -> bytes:
        """Stable cache key: a digest of the genome's dtype, shape and bytes."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(str(genome.dtype).encode())
        digest.update(str(genome.shape).encode())
        digest.update(np.ascontiguousarray(genome).tobytes())
        return digest.digest()

    @staticmethod
    def _ancestry_record(individual: Individual, key: Optional[bytes]) -> dict:
        """Per-genome ancestry record for delta-reuse batch evaluators.

        ``fingerprint`` is the genome's own digest (the delta store admits
        spliced activations under it); ``ancestor``/``diff_bound`` name the
        head parent's digest and a box bounding where the genome can differ
        from that parent (``None`` ancestor = no usable lineage).
        """
        lineage = individual.metadata.get("ancestor")
        return {
            "fingerprint": key,
            "ancestor": lineage.get("fingerprint") if lineage else None,
            "diff_bound": lineage.get("diff_bound") if lineage else None,
        }

    def _evaluate(self, population: Sequence[Individual]) -> None:
        """Assign objective vectors to every unevaluated individual.

        Cached genomes are answered from the run's evaluation cache; the
        rest go through one ``evaluate_population`` batch when the objective
        function provides it, or a sequential loop otherwise.  Both paths
        yield bit-identical objective vectors.
        """
        pending = [ind for ind in population if not ind.is_evaluated]
        if not pending:
            return
        self.num_evaluations += len(pending)

        unique: list[Individual] = []
        unique_keys: list[Optional[bytes]] = []
        duplicates: list[tuple[Individual, int]] = []
        if self.config.evaluation_cache or self._batch_accepts_ancestry:
            # Resolve cache hits first; duplicated genomes inside one batch
            # collapse onto a single evaluation via the per-batch key map.
            # The genome digest doubles as the individual's *fingerprint* —
            # the key under which the delta-reuse path stores its spliced
            # activations and under which children look their parents up.
            batch_positions: dict[bytes, int] = {}
            for individual in pending:
                key = self._genome_key(individual.genome)
                individual.metadata["fingerprint"] = key
                if not self.config.evaluation_cache:
                    unique.append(individual)
                    unique_keys.append(key)
                    continue
                cached = self._cache.get((self._fidelity_key, key))
                if cached is not None:
                    individual.set_objectives(cached.copy())
                    self.cache_hits += 1
                elif key in batch_positions:
                    duplicates.append((individual, batch_positions[key]))
                    self.cache_hits += 1
                else:
                    batch_positions[key] = len(unique)
                    unique.append(individual)
                    unique_keys.append(key)
        else:
            unique = list(pending)
            unique_keys = [None] * len(unique)

        if unique:
            if self._batch_evaluator is not None:
                genomes = np.stack([ind.genome for ind in unique], axis=0)
                kwargs: dict = {}
                if self._batch_accepts_bounds:
                    kwargs["dirty_bounds"] = [
                        ind.metadata.get("dirty_bound") for ind in unique
                    ]
                if self._batch_accepts_ancestry:
                    kwargs["ancestry"] = [
                        self._ancestry_record(ind, key)
                        for ind, key in zip(unique, unique_keys)
                    ]
                matrix = np.asarray(
                    self._batch_evaluator(genomes, **kwargs), dtype=np.float64
                )
                if matrix.shape[0] != len(unique):
                    raise ValueError(
                        "evaluate_population returned "
                        f"{matrix.shape[0]} rows for {len(unique)} genomes"
                    )
                for individual, row in zip(unique, matrix):
                    individual.set_objectives(row)
            else:
                for individual in unique:
                    individual.set_objectives(
                        self.objective_function(individual.genome)
                    )
            if self.config.evaluation_cache:
                for individual, key in zip(unique, unique_keys):
                    if key is not None:
                        self._cache[(self._fidelity_key, key)] = (
                            individual.objectives.copy()
                        )

        for individual, position in duplicates:
            individual.set_objectives(unique[position].objectives.copy())

    def _rank_population(self, population: list[Individual]) -> list[list[int]]:
        fronts = fast_non_dominated_sort(population)
        for front in fronts:
            crowding_distance(population, front)
        return fronts

    def _enter_fidelity(self, value: str | None) -> None:
        """Switch the objective function's evaluation fidelity.

        ``None`` means exact.  The cache namespace follows the objective
        function's own ``fidelity_tag`` when it has one (so semantically
        identical configurations share entries), falling back to the raw
        value.  No-op unless fast search is configured.
        """
        if not callable(self._fidelity_setter):
            return
        self._fidelity_setter(value)
        tag = getattr(self.objective_function, "fidelity_tag", None)
        self._fidelity_key = tag if tag is not None else (value or "exact")

    def _rescore(self, population: list[Individual]) -> None:
        """Re-evaluate a population bit-exactly at full fidelity.

        Enters exact fidelity, discards every approximate objective vector
        and re-runs the normal evaluation pipeline — the literal code path
        a from-scratch exact run would take, so the resulting vectors are
        bit-identical to evaluating the same genomes without fast search.
        The caller is responsible for restoring the search fidelity if the
        run continues.
        """
        self._enter_fidelity(None)
        for individual in population:
            individual.reset_evaluation()
        self._evaluate(population)
        self._rank_population(population)

    def _initial_population(self) -> list[Individual]:
        init_config = InitializationConfig(
            population_size=self.config.population_size,
            gaussian_sigma=self.config.initialization.gaussian_sigma,
            include_zero_mask=self.config.initialization.include_zero_mask,
            salt_and_pepper_fraction=self.config.initialization.salt_and_pepper_fraction,
            max_value=self.config.initialization.max_value,
            sparse_fraction=self.config.initialization.sparse_fraction,
            sparse_patch_fraction=self.config.initialization.sparse_patch_fraction,
        )
        population = initialize_population(self.genome_shape, self.rng, init_config)
        for individual in population:
            individual.genome = self._apply_constraint(individual.genome)
        return population

    def _mutation_config(self, generation: int) -> MutationConfig:
        """The mutation config for one offspring round, annealed if enabled."""
        annealing = self.config.annealing
        if annealing is None:
            return self.config.mutation
        fraction = annealing.window_fraction(
            self.config.mutation.window_fraction,
            generation,
            self.config.num_iterations,
        )
        return replace(self.config.mutation, window_fraction=fraction)

    def _make_offspring(
        self, population: list[Individual], generation: int = 0
    ) -> list[Individual]:
        """Crossover + mutation, propagating dirty-region bounds.

        The tracked operator variants consume the same random draws as the
        plain ones, so seeded runs are unchanged; each offspring carries a
        ``metadata["dirty_bound"]`` box covering its nonzero support
        (``None`` = unknown), which the incremental evaluation path uses to
        cap its exact nonzero scans, plus a ``metadata["ancestor"]`` record
        naming its head parent's fingerprint and a box bounding where it
        can differ from that parent — the cross-generation delta-reuse path
        re-splices only that region into the parent's cached activations.
        ``generation`` selects the annealed mutation intensity when an
        :class:`~repro.nsga.mutation.IntensityAnnealing` schedule is set.
        """
        mutation = self._mutation_config(generation)
        parents = binary_tournament(population, self.rng, self.config.population_size)
        offspring: list[Individual] = []
        for index in range(0, len(parents) - 1, 2):
            parent_a, parent_b = parents[index], parents[index + 1]
            child_a, child_b, bound_a, bound_b, rel_a, rel_b = (
                one_point_crossover_lineage(
                    parent_a.genome,
                    parent_b.genome,
                    self.rng,
                    probability=self.config.crossover_probability,
                    first_bound=parent_a.metadata.get("dirty_bound"),
                    second_bound=parent_b.metadata.get("dirty_bound"),
                )
            )
            child_a, bound_a, touched_a = mutate_tracked_lineage(
                child_a, self.rng, mutation, bound_a
            )
            child_b, bound_b, touched_b = mutate_tracked_lineage(
                child_b, self.rng, mutation, bound_b
            )
            # Constraints (region projection, rounding, clipping) are
            # pixelwise and can only zero pixels out, so both the support
            # bounds and the child-vs-parent diff bounds remain supersets.
            offspring.append(
                Individual(
                    genome=self._apply_constraint(child_a),
                    metadata={
                        "dirty_bound": bound_a,
                        "ancestor": self._lineage_record(
                            parent_a, bbox_union(rel_a, touched_a)
                        ),
                    },
                )
            )
            offspring.append(
                Individual(
                    genome=self._apply_constraint(child_b),
                    metadata={
                        "dirty_bound": bound_b,
                        "ancestor": self._lineage_record(
                            parent_b, bbox_union(rel_b, touched_b)
                        ),
                    },
                )
            )
        # Odd population sizes (the paper uses 101) get one extra mutant of
        # the last parent so that |offspring| == |population|.
        while len(offspring) < self.config.population_size:
            extra, bound, touched = mutate_tracked_lineage(
                parents[-1].genome,
                self.rng,
                mutation,
                parents[-1].metadata.get("dirty_bound"),
            )
            offspring.append(
                Individual(
                    genome=self._apply_constraint(extra),
                    metadata={
                        "dirty_bound": bound,
                        "ancestor": self._lineage_record(parents[-1], touched),
                    },
                )
            )
        return offspring[: self.config.population_size]

    @staticmethod
    def _lineage_record(parent: Individual, diff_bound) -> dict | None:
        """Ancestor record for an offspring, ``None`` without a fingerprint."""
        fingerprint = parent.metadata.get("fingerprint")
        if fingerprint is None:
            return None
        return {"fingerprint": fingerprint, "diff_bound": diff_bound}

    def _environmental_selection(
        self, combined: list[Individual]
    ) -> list[Individual]:
        fronts = self._rank_population(combined)
        survivors: list[Individual] = []
        for front in fronts:
            if len(survivors) + len(front) <= self.config.population_size:
                survivors.extend(combined[i] for i in front)
            else:
                remaining = self.config.population_size - len(survivors)
                members = sorted(
                    (combined[i] for i in front),
                    key=lambda ind: (ind.crowding if ind.crowding is not None else 0.0),
                    reverse=True,
                )
                survivors.extend(members[:remaining])
                break
        return survivors

    @staticmethod
    def _incremental_delta(
        before: dict | None, after: dict | None
    ) -> dict | None:
        """Per-generation view of two monotonic incremental snapshots."""
        if before is None or after is None:
            return None
        entry = {key: after[key] - before.get(key, 0) for key in after}
        total = entry.pop("total_area", 0)
        entry["dirty_area_ratio"] = (
            float(entry.pop("dirty_area", 0) / total) if total > 0 else 0.0
        )
        return entry

    def run(self) -> NSGAResult:
        """Execute the configured number of generations and return the result."""
        # Objective functions with an incremental-inference path expose
        # monotonic counters; snapshot diffs give per-generation stats
        # (delta hits/misses, dirty-area ratio) without touching results.
        snapshot = getattr(self.objective_function, "incremental_snapshot", None)
        baseline = snapshot() if callable(snapshot) else None
        run_start = baseline

        # Two-phase bounded-error search: the evolutionary loop runs at an
        # approximate fidelity, the final population (and optionally
        # periodic checkpoints) are re-scored bit-exactly.  The run always
        # *ends* at exact fidelity, so every objective vector the caller
        # sees came from the exact evaluation path.
        fast = self.config.fast_search
        if fast:
            self._enter_fidelity(self.config.search_fidelity)

        population = self._initial_population()
        self._evaluate(population)
        self._rank_population(population)
        if callable(snapshot):
            baseline = snapshot()

        history: list[dict] = []
        rescore_every = self.config.rescore_every if fast else 0
        for generation in range(self.config.num_iterations):
            offspring = self._make_offspring(population, generation)
            self._evaluate(offspring)
            population = self._environmental_selection(population + offspring)
            if (
                rescore_every > 0
                and (generation + 1) % rescore_every == 0
                and generation + 1 < self.config.num_iterations
            ):
                # Periodic drift correction: pin the survivors to their
                # exact objective values, then continue searching
                # approximately from the corrected ranking.
                self._rescore(population)
                self._enter_fidelity(self.config.search_fidelity)

            objectives = np.stack([ind.objectives for ind in population], axis=0)
            history.append(
                {
                    "generation": generation,
                    "best_per_objective": objectives.min(axis=0),
                    "mean_per_objective": objectives.mean(axis=0),
                    "front_size": sum(1 for ind in population if ind.rank == 1),
                }
            )
            if fast:
                history[-1]["fidelity"] = self._fidelity_key
            if callable(snapshot):
                current = snapshot()
                entry = self._incremental_delta(baseline, current)
                if entry is not None:
                    history[-1]["incremental"] = entry
                baseline = current
            if self.callback is not None:
                self.callback(generation, population)

        if fast:
            # Final exact re-score: the returned fronts are computed from
            # bit-exact objective vectors of the searched genomes.
            self._rescore(population)
        fronts = self._rank_population(population)
        return NSGAResult(
            population=population,
            fronts=fronts,
            history=history,
            num_evaluations=self.num_evaluations,
            cache_hits=self.cache_hits,
            incremental=self._incremental_delta(
                run_start, snapshot() if callable(snapshot) else None
            ),
        )
