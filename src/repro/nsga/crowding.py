"""Crowding-distance assignment (NSGA-II, Deb 2002)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nsga.individual import Individual


def crowding_distance(
    population: Sequence[Individual], front: Sequence[int]
) -> np.ndarray:
    """Crowding distance for the individuals of one front.

    The distance of an individual is the sum, over objectives, of the
    normalised gap between its two neighbours when the front is sorted
    along that objective; boundary individuals get infinite distance.
    Individuals' ``crowding`` attributes are updated in place.
    """
    front = list(front)
    size = len(front)
    if size == 0:
        return np.array([])
    distances = np.zeros(size, dtype=np.float64)
    if size <= 2:
        distances[:] = np.inf
        for position, index in enumerate(front):
            population[index].crowding = float(distances[position])
        return distances

    objectives = np.stack([population[i].objectives for i in front], axis=0)
    num_objectives = objectives.shape[1]

    for objective in range(num_objectives):
        order = np.argsort(objectives[:, objective], kind="stable")
        sorted_values = objectives[order, objective]
        span = sorted_values[-1] - sorted_values[0]
        distances[order[0]] = np.inf
        distances[order[-1]] = np.inf
        if span <= 0:
            continue
        # Vectorised neighbour gaps: ``order`` is a permutation, so the
        # fancy-indexed accumulation equals the original per-position loop
        # (kept as a reference in the property test suite) bit for bit.
        gaps = (sorted_values[2:] - sorted_values[:-2]) / span
        distances[order[1:-1]] += gaps

    for position, index in enumerate(front):
        population[index].crowding = float(distances[position])
    return distances
