"""Individuals of the genetic algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(eq=False)
class Individual:
    """One member of the population: a genome plus its evaluation.

    Equality is identity-based (``eq=False``): two individuals are the same
    only if they are the same object, which is the semantics population
    bookkeeping needs (array-valued fields make field-wise equality both
    ambiguous and meaningless here).

    For the butterfly-effect attack the genome is a filter mask — a signed
    perturbation array of the same shape as the image — but the NSGA-II
    implementation only assumes the genome is a NumPy array.

    Attributes
    ----------
    genome:
        The decision variables.
    objectives:
        The evaluated objective vector (all objectives are minimised), or
        ``None`` when the individual has not been evaluated yet.
    rank:
        Pareto rank assigned by non-dominated sorting (1 is the first
        front).  ``None`` before sorting.
    crowding:
        Crowding distance within its front.  ``None`` before assignment.
    """

    genome: np.ndarray
    objectives: Optional[np.ndarray] = None
    rank: Optional[int] = None
    crowding: Optional[float] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.genome = np.asarray(self.genome)
        if self.objectives is not None:
            self.objectives = np.asarray(self.objectives, dtype=np.float64)

    @property
    def is_evaluated(self) -> bool:
        return self.objectives is not None

    @property
    def num_objectives(self) -> int:
        return 0 if self.objectives is None else int(self.objectives.shape[0])

    def set_objectives(self, values) -> None:
        """Record the evaluated objective vector."""
        self.objectives = np.asarray(values, dtype=np.float64)

    def copy(self) -> "Individual":
        """Deep copy of the genome; evaluation results are copied as well."""
        return Individual(
            genome=self.genome.copy(),
            objectives=None if self.objectives is None else self.objectives.copy(),
            rank=self.rank,
            crowding=self.crowding,
            metadata=dict(self.metadata),
        )

    def reset_evaluation(self) -> None:
        """Clear objectives / rank / crowding after the genome changed."""
        self.objectives = None
        self.rank = None
        self.crowding = None
