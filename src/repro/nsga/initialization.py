"""Initial population of filter masks.

The paper's initial population has 101 individuals: 100 filter masks drawn
from a Gaussian distribution (with various digital-image-processing noise
types applied on top) plus one all-zero mask that keeps the original image.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.noise import salt_and_pepper_mask
from repro.nsga.individual import Individual


@dataclass(frozen=True)
class InitializationConfig:
    """Configuration of the initial population.

    Attributes
    ----------
    population_size:
        Total number of individuals including the all-zero mask
        (Table II: 101).
    gaussian_sigma:
        Standard deviation of the Gaussian initial masks, in pixel-value
        units.
    include_zero_mask:
        Whether to add the all-zero individual (keeps the original image).
    salt_and_pepper_fraction:
        Fraction of the random individuals that additionally receive a
        sparse salt-and-pepper component ("various noise types of digital
        image processing are applied").
    max_value:
        Bound of the signed perturbation range (paper: 255).
    """

    population_size: int = 101
    gaussian_sigma: float = 12.0
    include_zero_mask: bool = True
    salt_and_pepper_fraction: float = 0.3
    max_value: float = 255.0

    def __post_init__(self) -> None:
        if self.population_size < 1:
            raise ValueError("population_size must be at least 1")
        if self.gaussian_sigma < 0:
            raise ValueError("gaussian_sigma must be non-negative")
        if not 0.0 <= self.salt_and_pepper_fraction <= 1.0:
            raise ValueError("salt_and_pepper_fraction must be in [0, 1]")


def initialize_population(
    genome_shape: tuple[int, ...],
    rng: np.random.Generator,
    config: InitializationConfig | None = None,
) -> list[Individual]:
    """Create the initial population of filter-mask individuals."""
    config = config if config is not None else InitializationConfig()
    population: list[Individual] = []

    num_random = config.population_size - (1 if config.include_zero_mask else 0)
    for index in range(num_random):
        mask = rng.normal(0.0, config.gaussian_sigma, size=genome_shape)
        if rng.random() < config.salt_and_pepper_fraction and len(genome_shape) == 3:
            mask += salt_and_pepper_mask(
                genome_shape, amount=0.002, rng=rng, max_value=config.max_value
            )
        mask = np.clip(mask, -config.max_value, config.max_value)
        population.append(Individual(genome=mask))

    if config.include_zero_mask:
        # The zero mask's dirty region is known exactly: empty.  The bound
        # lets the incremental evaluation path skip even the nonzero scan
        # and answer straight from the cached clean prediction.
        population.append(
            Individual(
                genome=np.zeros(genome_shape, dtype=np.float64),
                metadata={"dirty_bound": (0, 0, 0, 0)},
            )
        )
    return population
