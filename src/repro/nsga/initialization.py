"""Initial population of filter masks.

The paper's initial population has 101 individuals: 100 filter masks drawn
from a Gaussian distribution (with various digital-image-processing noise
types applied on top) plus one all-zero mask that keeps the original image.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.noise import salt_and_pepper_mask
from repro.nsga.individual import Individual


@dataclass(frozen=True)
class InitializationConfig:
    """Configuration of the initial population.

    Attributes
    ----------
    population_size:
        Total number of individuals including the all-zero mask
        (Table II: 101).
    gaussian_sigma:
        Standard deviation of the Gaussian initial masks, in pixel-value
        units.
    include_zero_mask:
        Whether to add the all-zero individual (keeps the original image).
    salt_and_pepper_fraction:
        Fraction of the random individuals that additionally receive a
        sparse salt-and-pepper component ("various noise types of digital
        image processing are applied").
    max_value:
        Bound of the signed perturbation range (paper: 255).
    sparse_fraction:
        Fraction of the random individuals initialised as *sparse* masks —
        Gaussian noise confined to one small random patch instead of the
        whole image — so short attack runs enter the incremental
        (dirty-region) inference sweet spot from generation zero instead of
        converging into it late.  ``0.0`` (the default) reproduces the
        paper's dense initial population draw for draw: the dense
        individuals are always generated first with the identical RNG
        sequence, and the sparse tail only consumes additional draws.
    sparse_patch_fraction:
        Area of each sparse patch as a fraction of the image plane
        (default 2 %; only used when ``sparse_fraction > 0``).
    """

    population_size: int = 101
    gaussian_sigma: float = 12.0
    include_zero_mask: bool = True
    salt_and_pepper_fraction: float = 0.3
    max_value: float = 255.0
    sparse_fraction: float = 0.0
    sparse_patch_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.population_size < 1:
            raise ValueError("population_size must be at least 1")
        if self.gaussian_sigma < 0:
            raise ValueError("gaussian_sigma must be non-negative")
        if not 0.0 <= self.salt_and_pepper_fraction <= 1.0:
            raise ValueError("salt_and_pepper_fraction must be in [0, 1]")
        if not 0.0 <= self.sparse_fraction <= 1.0:
            raise ValueError("sparse_fraction must be in [0, 1]")
        if not 0.0 < self.sparse_patch_fraction <= 1.0:
            raise ValueError("sparse_patch_fraction must be in (0, 1]")


def _sparse_individual(
    genome_shape: tuple[int, ...],
    rng: np.random.Generator,
    config: InitializationConfig,
) -> Individual:
    """One sparse initial mask: Gaussian noise confined to a random patch.

    The patch covers ``sparse_patch_fraction`` of the image plane (roughly
    square, clipped to the image), placed uniformly at random.  The exact
    patch box is attached as the individual's ``dirty_bound`` so the
    incremental evaluation path can skip even the nonzero scan.
    """
    length, width = int(genome_shape[0]), int(genome_shape[1])
    target = max(1, int(round(length * width * config.sparse_patch_fraction)))
    side = max(1, int(round(np.sqrt(target))))
    patch_length = min(length, side)
    patch_width = min(width, max(1, int(round(target / side))))
    row = int(rng.integers(0, length - patch_length + 1))
    col = int(rng.integers(0, width - patch_width + 1))

    mask = np.zeros(genome_shape, dtype=np.float64)
    patch_shape = (patch_length, patch_width) + tuple(genome_shape[2:])
    patch = rng.normal(0.0, config.gaussian_sigma, size=patch_shape)
    mask[row : row + patch_length, col : col + patch_width] = np.clip(
        patch, -config.max_value, config.max_value
    )
    bound = (row, row + patch_length, col, col + patch_width)
    return Individual(genome=mask, metadata={"dirty_bound": bound})


def initialize_population(
    genome_shape: tuple[int, ...],
    rng: np.random.Generator,
    config: InitializationConfig | None = None,
) -> list[Individual]:
    """Create the initial population of filter-mask individuals."""
    config = config if config is not None else InitializationConfig()
    population: list[Individual] = []

    num_random = config.population_size - (1 if config.include_zero_mask else 0)
    # Sparse-biased option: the *last* num_sparse random individuals become
    # patch-confined masks.  Keeping the dense individuals first — drawn
    # exactly as before — means sparse_fraction=0.0 consumes the identical
    # RNG sequence as the original implementation (parity-tested).
    num_sparse = 0
    if config.sparse_fraction > 0.0 and len(genome_shape) >= 2:
        num_sparse = min(num_random, int(round(num_random * config.sparse_fraction)))
    num_dense = num_random - num_sparse

    for index in range(num_dense):
        mask = rng.normal(0.0, config.gaussian_sigma, size=genome_shape)
        if rng.random() < config.salt_and_pepper_fraction and len(genome_shape) == 3:
            mask += salt_and_pepper_mask(
                genome_shape, amount=0.002, rng=rng, max_value=config.max_value
            )
        mask = np.clip(mask, -config.max_value, config.max_value)
        population.append(Individual(genome=mask))

    for index in range(num_sparse):
        population.append(_sparse_individual(genome_shape, rng, config))

    if config.include_zero_mask:
        # The zero mask's dirty region is known exactly: empty.  The bound
        # lets the incremental evaluation path skip even the nonzero scan
        # and answer straight from the cached clean prediction.
        population.append(
            Individual(
                genome=np.zeros(genome_shape, dtype=np.float64),
                metadata={"dirty_bound": (0, 0, 0, 0)},
            )
        )
    return population
