"""NSGA-II multi-objective genetic algorithm (Deb et al., 2002).

Implemented from scratch for the butterfly-effect attack:

* :mod:`repro.nsga.individual` — individuals carrying a genome and its
  evaluated objective vector,
* :mod:`repro.nsga.sorting` — fast non-dominated sorting and Pareto ranks,
* :mod:`repro.nsga.crowding` — crowding-distance assignment,
* :mod:`repro.nsga.selection` — the Pareto-sorted binary tournament,
* :mod:`repro.nsga.crossover` — one-point crossover on flattened genomes,
* :mod:`repro.nsga.mutation` — the paper's four pixel-level mutation
  operators with a parametrisable window size,
* :mod:`repro.nsga.initialization` — Gaussian / noise-based initial
  population plus the all-zero individual,
* :mod:`repro.nsga.algorithm` — the NSGA-II main loop,
* :mod:`repro.nsga.front` — Pareto-front utilities (extraction,
  hypervolume, best-per-objective selection).

All objectives are *minimised*; callers that want to maximise an objective
(the paper's ``obj_dist``) negate it before handing it to the optimiser.
"""

from repro.nsga.individual import Individual
from repro.nsga.sorting import dominates, fast_non_dominated_sort, pareto_ranks
from repro.nsga.crowding import crowding_distance
from repro.nsga.selection import binary_tournament, crowded_comparison
from repro.nsga.crossover import one_point_crossover, uniform_crossover
from repro.nsga.mutation import (
    IntensityAnnealing,
    MutationConfig,
    complement_mutation,
    inversion_mutation,
    mutate,
    random_value_mutation,
    shuffle_mutation,
)
from repro.nsga.initialization import InitializationConfig, initialize_population
from repro.nsga.algorithm import NSGAConfig, NSGAII, NSGAResult
from repro.nsga.front import (
    best_per_objective,
    hypervolume,
    hypervolume_2d,
    nadir_reference,
    pareto_front,
    pareto_front_objectives,
)

__all__ = [
    "Individual",
    "dominates",
    "fast_non_dominated_sort",
    "pareto_ranks",
    "crowding_distance",
    "binary_tournament",
    "crowded_comparison",
    "one_point_crossover",
    "uniform_crossover",
    "IntensityAnnealing",
    "MutationConfig",
    "complement_mutation",
    "inversion_mutation",
    "mutate",
    "random_value_mutation",
    "shuffle_mutation",
    "InitializationConfig",
    "initialize_population",
    "NSGAConfig",
    "NSGAII",
    "NSGAResult",
    "best_per_objective",
    "hypervolume",
    "hypervolume_2d",
    "nadir_reference",
    "pareto_front",
    "pareto_front_objectives",
]
