"""Pareto-front utilities: extraction, per-objective champions, hypervolume."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nsga.individual import Individual
from repro.nsga.sorting import fast_non_dominated_sort


def pareto_front(population: Sequence[Individual]) -> list[Individual]:
    """Return the non-dominated individuals (rank-1 front) of a population."""
    if not population:
        return []
    fronts = fast_non_dominated_sort(list(population))
    return [population[i] for i in fronts[0]]


def pareto_front_objectives(population: Sequence[Individual]) -> np.ndarray:
    """Objective vectors of the rank-1 front, shape (front_size, num_obj)."""
    front = pareto_front(population)
    if not front:
        return np.zeros((0, 0))
    return np.stack([ind.objectives for ind in front], axis=0)


def best_per_objective(population: Sequence[Individual]) -> list[Individual]:
    """The best individual for each objective (paper's Figure 2 protocol).

    The paper only visualises "the resulting 3 perturbations reflecting the
    best of three objectives with each being the best for one objective".
    """
    evaluated = [ind for ind in population if ind.is_evaluated]
    if not evaluated:
        return []
    num_objectives = evaluated[0].num_objectives
    champions: list[Individual] = []
    for objective in range(num_objectives):
        champions.append(
            min(evaluated, key=lambda ind: float(ind.objectives[objective]))
        )
    return champions


def hypervolume_2d(
    points: np.ndarray, reference: tuple[float, float]
) -> float:
    """Hypervolume (area) dominated by a 2-D minimisation front.

    Parameters
    ----------
    points:
        Array of shape (n, 2) of objective vectors (minimised).
    reference:
        Reference point that should be dominated by every front point;
        points beyond the reference contribute nothing.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("hypervolume_2d expects points of shape (n, 2)")
    if points.shape[0] == 0:
        return 0.0
    ref_x, ref_y = float(reference[0]), float(reference[1])

    # Keep only points that dominate the reference point.
    mask = (points[:, 0] <= ref_x) & (points[:, 1] <= ref_y)
    points = points[mask]
    if points.shape[0] == 0:
        return 0.0

    order = np.argsort(points[:, 0], kind="stable")
    points = points[order]

    volume = 0.0
    best_y = ref_y
    for x, y in points:
        if y >= best_y:
            continue
        # Each point that improves on the lowest y seen so far contributes a
        # horizontal strip [x, ref_x] x [y, best_y] of new dominated area.
        volume += (ref_x - x) * (best_y - y)
        best_y = y
    return float(volume)


def _non_dominated(points: np.ndarray) -> np.ndarray:
    """Rows of ``points`` not weakly dominated by an earlier/other row.

    Minimisation convention; duplicate rows keep one representative.  Works
    on small fronts (quadratic scan) — hypervolume callers hand it Pareto
    fronts, which are small by construction.
    """
    keep: list[int] = []
    for i, candidate in enumerate(points):
        dominated = False
        for j, other in enumerate(points):
            if i == j:
                continue
            if np.all(other <= candidate) and (
                np.any(other < candidate) or j < i
            ):
                dominated = True
                break
        if not dominated:
            keep.append(i)
    return points[keep]


def nadir_reference(points: np.ndarray, margin: float = 0.0) -> np.ndarray:
    """Componentwise worst (maximum) of a set of minimised points.

    The conventional default hypervolume reference; ``margin`` adds a
    constant slack in every objective so that boundary points still
    contribute volume.  Raises on an empty set — there is no meaningful
    nadir of nothing.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError("nadir_reference needs a non-empty (n, d) point set")
    if not np.isfinite(points).all():
        raise ValueError("nadir_reference needs finite points")
    return points.max(axis=0) + float(margin)


def hypervolume(points: np.ndarray, reference: Sequence[float] | None = None) -> float:
    """Hypervolume dominated by a minimisation front in any dimension.

    Parameters
    ----------
    points:
        Array of shape (n, d) of objective vectors (minimised).  Empty
        fronts (``n == 0``) have volume 0.  Dominated and duplicate points
        are filtered out first, so any population slice — not only a clean
        Pareto front — is a valid input.
    reference:
        Reference point dominated by the front; contributions are clipped
        to it.  Defaults to the front's nadir (componentwise max), under
        which degenerate fronts (single point, collinear points that share
        a worst coordinate) have volume 0 rather than raising.

    The implementation slices along the last objective (the HSO scheme):
    each slab's volume is its thickness times the (d-1)-dimensional
    hypervolume of the points already "active" in that slab, with the 2-D
    sweep of :func:`hypervolume_2d` as the base case.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"hypervolume expects points of shape (n, d), got {points.shape}")
    if points.shape[0] == 0:
        return 0.0
    if points.shape[1] == 0:
        raise ValueError("hypervolume needs at least one objective")
    if not np.isfinite(points).all():
        raise ValueError("hypervolume needs finite points")
    if reference is None:
        ref = nadir_reference(points)
    else:
        ref = np.asarray(reference, dtype=np.float64)
        if ref.shape != (points.shape[1],):
            raise ValueError(
                f"reference must have shape ({points.shape[1]},), got {ref.shape}"
            )
        if not np.isfinite(ref).all():
            raise ValueError("reference must be finite")
    # Only points that weakly dominate the reference contribute volume.
    points = points[np.all(points <= ref, axis=1)]
    if points.shape[0] == 0:
        return 0.0
    points = _non_dominated(points)
    return _hypervolume_recursive(points, ref)


def _hypervolume_recursive(points: np.ndarray, ref: np.ndarray) -> float:
    """HSO slab recursion on a non-dominated, reference-dominating set."""
    dims = points.shape[1]
    if dims == 1:
        return float(ref[0] - points[:, 0].min())
    if dims == 2:
        return hypervolume_2d(points, (float(ref[0]), float(ref[1])))
    order = np.argsort(points[:, -1], kind="stable")
    points = points[order]
    volume = 0.0
    for index in range(points.shape[0]):
        low = points[index, -1]
        high = points[index + 1, -1] if index + 1 < points.shape[0] else ref[-1]
        thickness = float(high - low)
        if thickness <= 0.0:
            continue
        active = _non_dominated(points[: index + 1, :-1])
        volume += thickness * _hypervolume_recursive(active, ref[:-1])
    return float(volume)
