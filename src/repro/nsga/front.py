"""Pareto-front utilities: extraction, per-objective champions, hypervolume."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nsga.individual import Individual
from repro.nsga.sorting import fast_non_dominated_sort


def pareto_front(population: Sequence[Individual]) -> list[Individual]:
    """Return the non-dominated individuals (rank-1 front) of a population."""
    if not population:
        return []
    fronts = fast_non_dominated_sort(list(population))
    return [population[i] for i in fronts[0]]


def pareto_front_objectives(population: Sequence[Individual]) -> np.ndarray:
    """Objective vectors of the rank-1 front, shape (front_size, num_obj)."""
    front = pareto_front(population)
    if not front:
        return np.zeros((0, 0))
    return np.stack([ind.objectives for ind in front], axis=0)


def best_per_objective(population: Sequence[Individual]) -> list[Individual]:
    """The best individual for each objective (paper's Figure 2 protocol).

    The paper only visualises "the resulting 3 perturbations reflecting the
    best of three objectives with each being the best for one objective".
    """
    evaluated = [ind for ind in population if ind.is_evaluated]
    if not evaluated:
        return []
    num_objectives = evaluated[0].num_objectives
    champions: list[Individual] = []
    for objective in range(num_objectives):
        champions.append(
            min(evaluated, key=lambda ind: float(ind.objectives[objective]))
        )
    return champions


def hypervolume_2d(
    points: np.ndarray, reference: tuple[float, float]
) -> float:
    """Hypervolume (area) dominated by a 2-D minimisation front.

    Parameters
    ----------
    points:
        Array of shape (n, 2) of objective vectors (minimised).
    reference:
        Reference point that should be dominated by every front point;
        points beyond the reference contribute nothing.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("hypervolume_2d expects points of shape (n, 2)")
    if points.shape[0] == 0:
        return 0.0
    ref_x, ref_y = float(reference[0]), float(reference[1])

    # Keep only points that dominate the reference point.
    mask = (points[:, 0] <= ref_x) & (points[:, 1] <= ref_y)
    points = points[mask]
    if points.shape[0] == 0:
        return 0.0

    order = np.argsort(points[:, 0], kind="stable")
    points = points[order]

    volume = 0.0
    best_y = ref_y
    for x, y in points:
        if y >= best_y:
            continue
        # Each point that improves on the lowest y seen so far contributes a
        # horizontal strip [x, ref_x] x [y, best_y] of new dominated area.
        volume += (ref_x - x) * (best_y - y)
        best_y = y
    return float(volume)
