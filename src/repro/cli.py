"""Command-line interface.

Six subcommands cover the common workflows:

* ``repro-attack attack``    — run a butterfly-effect attack on a synthetic
  scene (or the full-paper budget with ``--paper-budget``) and optionally
  save the result,
* ``repro-attack compare``   — run the reduced Figure 2 architecture
  comparison and print the summary table,
* ``repro-attack transfer``  — measure mask transferability across
  seed-varied models (the N×N transfer matrix) on the experiment engine,
* ``repro-attack defend``    — attack undefended / noise-defended (and
  optionally ensemble) variants under the same budget,
* ``repro-attack sequence``  — attack a streaming scene sequence (one shared
  mask, track-level objectives, frame-to-frame activation reuse),
* ``repro-attack figures``   — regenerate the qualitative figure scenarios,
* ``repro-attack table``     — print Table I / Table II.

The sweep commands (``compare``, ``transfer``, ``defend``, ``sequence``) share the
execution-engine options ``--jobs``, ``--backend``, ``--experiment-seed``,
``--checkpoint-dir``/``--resume`` (fault-tolerant journaled execution: an
interrupted sweep resumes from the journal with bit-identical results) and
``--max-retries`` (in-run requeue of crashed/raising jobs) — results are
bit-identical for every backend and worker count.  The CLI works entirely
on the synthetic substrate, so every command runs offline on a laptop.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Sequence

from repro.analysis.reporting import format_table
from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.regions import HalfImageRegion, region_from_name
from repro.defenses.augmentation import NoiseAugmentationConfig
from repro.defenses.evaluation import ensemble_defense_evaluation, evaluate_defense
from repro.defenses.jobs import DefendedModelSpec
from repro.detectors.activation_cache import ActivationCacheStore
from repro.detectors.fidelity import fidelity_names
from repro.data.dataset import generate_dataset
from repro.detectors.training import TrainingConfig
from repro.detectors.zoo import build_detector
from repro.experiments.config import (
    ExperimentConfig,
    NSGA_TABLE_II,
    experiment_table_rows,
    nsga_table_rows,
)
from repro.experiments.figures import (
    figure1_disappearing_objects,
    figure3_figure4_contrast,
    figure5_ghost_objects,
)
from repro.experiments.engine import RetryPolicy
from repro.experiments.jobs import ModelSpec, SequenceSpec
from repro.experiments.runner import run_architecture_comparison, run_sequence_sweep
from repro.experiments.transfer import run_transferability_experiment
from repro.io.serialization import (
    save_attack_result,
    save_defense_evaluation,
    save_ensemble_defense_evaluation,
    save_transfer_result,
)
from repro.nsga.algorithm import NSGAConfig


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return parsed


def _non_negative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {value}")
    return parsed


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """The execution-engine options shared by every sweep subcommand."""
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help=(
            "worker processes for the sweep (1 = in-process serial "
            "execution); results are bit-identical for every worker count, "
            "only wall-clock time changes"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "process", "persistent"],
        default=None,
        help=(
            "execution backend for the sweep; default: serial for --jobs 1, "
            "a multiprocessing pool otherwise; 'persistent' keeps a pool of "
            "long-lived workers with shared-memory scene/activation tensors"
        ),
    )
    parser.add_argument(
        "--experiment-seed",
        type=_non_negative_int,
        default=None,
        help=(
            "derive one NSGA-II seed per job from this seed (spawn-safe "
            "SeedSequence by plan position, independent of worker "
            "scheduling); default: every job runs the same configured seed"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help=(
            "journal completed jobs to this directory as they finish; an "
            "interrupted sweep re-run with --resume picks up from the "
            "journal with bit-identical final results"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from the journals in --checkpoint-dir (already-journaled "
            "jobs are skipped); without --resume an existing journal is an "
            "error so a stale directory cannot silently skip work"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=_non_negative_int,
        default=None,
        help=(
            "requeue a job whose worker crashed or raised up to this many "
            "times before giving up; default: fail fast on the first error"
        ),
    )


def _engine_kwargs(args: argparse.Namespace) -> dict:
    """Resolve the shared engine options into sweep keyword arguments."""
    if args.resume and args.checkpoint_dir is None:
        raise SystemExit("error: --resume requires --checkpoint-dir")
    retry = (
        RetryPolicy(max_retries=args.max_retries)
        if args.max_retries is not None
        else None
    )
    return {
        "n_jobs": args.jobs,
        "backend": args.backend,
        "experiment_seed": args.experiment_seed,
        "checkpoint_dir": args.checkpoint_dir,
        "resume": args.resume,
        "retry": retry,
    }


def _print_execution_summary(execution: dict | None) -> None:
    """Print the shared engine-provenance summary of a sweep report."""
    if execution is None:
        return
    print(
        f"Execution: backend={execution['backend']} jobs={execution['n_jobs']} "
        f"wall={execution['duration_seconds']:.2f}s"
    )
    if execution.get("journal_hits") or execution.get("retries"):
        print(
            f"Fault tolerance: {execution.get('journal_hits', 0)} jobs "
            f"restored from journal, {execution.get('retries', 0)} retries"
        )
    if execution.get("cache_enabled"):
        stats = execution["cache_stats"]
        print(
            f"Activation cache (sweep total): {stats['hits']} hits, "
            f"{stats['misses']} misses, {stats['evictions']} evictions, "
            f"{stats.get('invalidations', 0)} invalidations "
            f"(hit rate {stats['hit_rate']:.1%})"
        )
        if stats.get("delta_hits", 0) or stats.get("delta_misses", 0):
            print(
                f"Delta reuse (sweep total): {stats['delta_hits']} ancestor "
                f"hits, {stats['delta_misses']} misses "
                f"(hit rate {stats.get('delta_hit_rate', 0.0):.1%})"
            )
        if stats.get("frame_hits", 0) or stats.get("frame_misses", 0):
            print(
                f"Frame cache (sweep total): {stats['frame_hits']} temporal "
                f"derivations/hits, {stats['frame_misses']} dense rebuilds "
                f"(hit rate {stats.get('frame_hit_rate', 0.0):.1%})"
            )
    else:
        print("Activation cache: disabled")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-attack`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-attack",
        description="Butterfly Effect Attack (DATE 2023) reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    attack = subparsers.add_parser("attack", help="attack one synthetic scene")
    attack.add_argument("--detector", default="detr", help="yolo or detr")
    attack.add_argument("--seed", type=int, default=1, help="detector seed")
    attack.add_argument("--scene-seed", type=int, default=7, help="scene generator seed")
    attack.add_argument(
        "--region", default="right", help="perturbable region: full, left or right"
    )
    attack.add_argument("--iterations", type=int, default=10)
    attack.add_argument("--population", type=int, default=16)
    attack.add_argument(
        "--paper-budget",
        action="store_true",
        help="use the paper's Table II budget (100 generations x 101 individuals)",
    )
    attack.add_argument("--output", default=None, help="directory to save the result")
    attack.add_argument(
        "--activation-cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "cache the clean scene's activations and evaluate masks through "
            "the detector's incremental dirty-region path (bit-identical to "
            "the dense path, only faster); --no-activation-cache forces the "
            "dense batched path.  Default: on, unless REPRO_ACTIVATION_CACHE=0"
        ),
    )
    attack.add_argument(
        "--activation-cache-size",
        type=_positive_int,
        default=4,
        help=(
            "entry cap of the clean-activation store (one entry per cached "
            "(detector, scene) pair; least recently used scenes are evicted)"
        ),
    )
    attack.add_argument(
        "--delta-reuse",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "memoise each evaluated mask's spliced activations and re-splice "
            "only the child-vs-parent diff for offspring whose ancestor is "
            "still cached (bit-identical to the clean-splice path, only "
            "faster on lineage-heavy populations); --no-delta-reuse forces "
            "every mask through the full clean-splice.  Default: on, unless "
            "REPRO_DELTA_REUSE=0"
        ),
    )
    attack.add_argument(
        "--delta-store-size",
        type=_positive_int,
        default=None,
        help="entry cap of the per-scene delta-activation store (default 256)",
    )
    attack.add_argument(
        "--fast-search",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "two-phase bounded-error search: run the evolutionary search at "
            "an approximate evaluation fidelity (--search-fidelity) and "
            "re-score the final population bit-exactly, so the reported "
            "Pareto front always carries exact objective values.  Default: "
            "off (fully exact search)"
        ),
    )
    attack.add_argument(
        "--search-fidelity",
        choices=sorted(fidelity_names()),
        default=None,
        help=(
            "approximate fidelity preset for the search phase of "
            "--fast-search: 'windowed' refreshes attention only in a band "
            "around each mask's dirty cells, 'float32' runs the perturbed "
            "forward in single precision, 'turbo' combines both, "
            "'surrogate' searches on a downscaled scene (default: windowed)"
        ),
    )
    attack.add_argument(
        "--rescore-every",
        type=_positive_int,
        default=None,
        help=(
            "with --fast-search, additionally re-score the surviving "
            "population at exact fidelity every N generations (periodic "
            "drift correction; default: only at the end)"
        ),
    )
    attack.add_argument(
        "--anneal-final-window",
        type=float,
        default=None,
        help=(
            "anneal the mutation window fraction from its base value to "
            "this value across the run (dense exploration early, sparse "
            "refinement late); default: constant paper schedule"
        ),
    )
    attack.add_argument(
        "--anneal-shape",
        choices=["log", "linear"],
        default="log",
        help="interpolation shape of --anneal-final-window (default: log)",
    )

    compare = subparsers.add_parser(
        "compare", help="run the reduced Figure 2 architecture comparison"
    )
    compare.add_argument("--models", type=int, default=2, help="models per architecture")
    compare.add_argument("--images", type=int, default=1, help="images per model")
    compare.add_argument("--iterations", type=int, default=8)
    compare.add_argument("--population", type=int, default=14)
    _add_engine_options(compare)

    transfer = subparsers.add_parser(
        "transfer",
        help="measure mask transferability across seed-varied models",
    )
    transfer.add_argument("--architecture", default="detr", help="yolo or detr")
    transfer.add_argument(
        "--models",
        type=_positive_int,
        default=2,
        help="number of seed-varied models (trained with seeds 1..N)",
    )
    transfer.add_argument("--scene-seed", type=int, default=7, help="scene generator seed")
    transfer.add_argument("--iterations", type=int, default=6)
    transfer.add_argument("--population", type=int, default=12)
    _add_engine_options(transfer)
    transfer.add_argument("--output", default=None, help="directory to save the report")

    defend = subparsers.add_parser(
        "defend",
        help="attack undefended vs noise-defended (and ensemble) variants",
    )
    defend.add_argument("--detector", default="detr", help="yolo or detr")
    defend.add_argument("--seed", type=int, default=1, help="detector seed")
    defend.add_argument("--scene-seed", type=int, default=7, help="scene generator seed")
    defend.add_argument("--iterations", type=int, default=6)
    defend.add_argument("--population", type=int, default=12)
    defend.add_argument(
        "--augmented-copies",
        type=_positive_int,
        default=1,
        help="noisy copies of every training scene in the defence refit",
    )
    defend.add_argument(
        "--ensemble",
        type=_positive_int,
        default=None,
        help=(
            "additionally attack an ensemble of this many seed-varied models "
            "(seeds 1..N) and measure whether vote fusion suppresses the damage"
        ),
    )
    _add_engine_options(defend)
    defend.add_argument("--output", default=None, help="directory to save the report")

    sequence = subparsers.add_parser(
        "sequence",
        help=(
            "attack a streaming scene sequence: one shared mask, "
            "track-level objectives, temporally derived activations"
        ),
    )
    sequence.add_argument("--detector", default="yolo", help="yolo or detr")
    sequence.add_argument(
        "--models",
        type=_positive_int,
        default=1,
        help="number of seed-varied models (trained with seeds 1..N)",
    )
    sequence.add_argument("--scene-seed", type=int, default=7, help="sequence generator seed")
    sequence.add_argument(
        "--frames",
        type=_positive_int,
        default=4,
        help="frames per generated sequence (objects drift between frames)",
    )
    sequence.add_argument(
        "--frame-cache-size",
        type=_positive_int,
        default=2,
        help=(
            "rolling window of per-frame activation bundles the temporal "
            "cache keeps; frame t's clean activations are derived from "
            "frame t-1's bundle by recomputing only the moving-object "
            "region (bit-identical to a dense per-frame build)"
        ),
    )
    sequence.add_argument(
        "--track-k",
        type=_positive_int,
        default=2,
        help=(
            "consecutive undetected frames for a ground-truth track to "
            "count as suppressed (the fourth, track-survival objective)"
        ),
    )
    sequence.add_argument(
        "--iou-threshold",
        type=float,
        default=0.5,
        help="IoU for matching a detection to a ground-truth track box",
    )
    sequence.add_argument(
        "--max-speed",
        type=float,
        default=4.0,
        help="maximum per-frame object drift in pixels",
    )
    sequence.add_argument("--iterations", type=int, default=6)
    sequence.add_argument("--population", type=int, default=12)
    _add_engine_options(sequence)
    sequence.add_argument("--output", default=None, help="directory to save the first result")

    figures = subparsers.add_parser("figures", help="regenerate a figure scenario")
    figures.add_argument(
        "name", choices=["fig1", "fig3-4", "fig5"], help="which figure to regenerate"
    )
    figures.add_argument("--iterations", type=int, default=12)
    figures.add_argument("--population", type=int, default=16)

    table = subparsers.add_parser("table", help="print Table I or Table II")
    table.add_argument("name", choices=["1", "2"], help="table number")

    return parser


def _attack_config(args: argparse.Namespace) -> AttackConfig:
    region = region_from_name(args.region) if hasattr(args, "region") else region_from_name("right")
    cache_overrides = {}
    if getattr(args, "activation_cache", None) is not None:
        cache_overrides["use_activation_cache"] = bool(args.activation_cache)
    if getattr(args, "activation_cache_size", None) is not None:
        cache_overrides["activation_cache_size"] = int(args.activation_cache_size)
    if getattr(args, "delta_reuse", None) is not None:
        cache_overrides["use_delta_reuse"] = bool(args.delta_reuse)
    if getattr(args, "delta_store_size", None) is not None:
        cache_overrides["delta_store_size"] = int(args.delta_store_size)
    if getattr(args, "fast_search", None) is not None:
        cache_overrides["fast_search"] = bool(args.fast_search)
    if getattr(args, "search_fidelity", None) is not None:
        cache_overrides["search_fidelity"] = str(args.search_fidelity)
    if getattr(args, "rescore_every", None) is not None:
        cache_overrides["rescore_every"] = int(args.rescore_every)
    if getattr(args, "anneal_final_window", None) is not None:
        cache_overrides["anneal_final_window"] = float(args.anneal_final_window)
        cache_overrides["anneal_shape"] = str(getattr(args, "anneal_shape", "log"))
    if getattr(args, "paper_budget", False):
        base = AttackConfig.paper_defaults(region=region)
        return replace(base, **cache_overrides) if cache_overrides else base
    return AttackConfig(
        nsga=NSGAConfig(
            num_iterations=args.iterations, population_size=args.population, seed=0
        ),
        region=region,
        **cache_overrides,
    )


def _run_attack(args: argparse.Namespace) -> int:
    dataset = generate_dataset(num_images=1, seed=args.scene_seed, half="left")
    sample = dataset[0]
    detector = build_detector(args.detector, seed=args.seed)
    print(f"Detector: {detector.name}")
    print(f"Clean prediction: {detector.predict(sample.image).summary()}")

    config = _attack_config(args)
    activation_store = (
        ActivationCacheStore(
            max_entries=config.activation_cache_size,
            delta_store_size=config.delta_store_size if config.use_delta_reuse else 0,
        )
        if config.use_activation_cache
        else None
    )
    result = ButterflyAttack(
        detector, config, activation_store=activation_store
    ).attack(sample.image)
    print(result.summary())
    print(
        f"Evaluations: {result.num_evaluations} requested, "
        f"{result.cache_hits} answered by the evaluation cache, "
        f"{result.num_queries} detector queries"
    )
    if activation_store is not None:
        stats = activation_store.stats
        print(
            f"Activation cache: {stats['entries']} cached scene(s), "
            f"{stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['evictions']} evictions"
        )
        if "delta_hits" in stats:
            print(
                f"Delta reuse: {stats['delta_hits']} ancestor hits, "
                f"{stats['delta_misses']} misses, "
                f"{stats['delta_bytes']} bytes admitted"
            )
    incremental_rows = [
        {
            "generation": entry["generation"],
            "dirty_area": f"{entry['incremental']['dirty_area_ratio']:.1%}",
            "delta_hits": entry["incremental"]["delta_hits"],
            "delta_misses": entry["incremental"]["delta_misses"],
        }
        for entry in result.history
        if entry.get("incremental") is not None
    ]
    if incremental_rows:
        print("Incremental inference per generation:")
        print(format_table(incremental_rows))
    rows = [
        {
            "solution": index,
            "obj_intensity": solution.intensity,
            "obj_degrad": solution.degradation,
            "obj_dist": solution.distance,
        }
        for index, solution in enumerate(result.pareto_front)
    ]
    print(format_table(rows))

    if args.output:
        path = save_attack_result(result, args.output)
        print(f"Saved attack result to {path}")
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    experiment = ExperimentConfig.reduced(
        models_per_architecture=args.models,
        images_per_model=args.images,
        ensemble_size=min(args.models, 2),
    )
    nsga = NSGAConfig(
        num_iterations=args.iterations, population_size=args.population, seed=0
    )
    comparison = run_architecture_comparison(
        experiment=experiment,
        nsga=nsga,
        **_engine_kwargs(args),
    )
    print(comparison.report.to_text())
    summary = comparison.susceptibility_summary()
    single_stage = summary["single_stage"]["best_degradation"]
    transformer = summary["transformer"]["best_degradation"]
    print(
        f"best obj_degrad: single_stage={single_stage:.3f} transformer={transformer:.3f}"
    )
    execution = comparison.execution
    if execution is not None:
        total = execution.cache_stats
        print(
            f"Execution: backend={execution.backend} jobs={execution.n_jobs} "
            f"wall={execution.duration_seconds:.2f}s workers={len(execution.per_worker)}"
        )
        if execution.journal_hits or execution.retries:
            print(
                f"Fault tolerance: {execution.journal_hits} jobs restored "
                f"from journal, {execution.retries} retries"
            )
        if execution.cache_enabled:
            print(
                f"Activation cache (sweep total): {total.hits} hits, "
                f"{total.misses} misses, {total.evictions} evictions "
                f"(hit rate {total.hit_rate:.1%})"
            )
            if execution.per_model:
                print(format_table(execution.cache_rows()))
        else:
            print("Activation cache: disabled")
    return 0


#: Reduced sweep geometry shared by the transfer/defend subcommands (the
#: laptop-scale ExperimentConfig.reduced() resolution).
_SWEEP_LENGTH, _SWEEP_WIDTH = 64, 208


def _sweep_protocol(scene_seed: int) -> tuple[TrainingConfig, object]:
    """Training config and one left-half scene at the reduced resolution."""
    training = TrainingConfig(image_length=_SWEEP_LENGTH, image_width=_SWEEP_WIDTH)
    dataset = generate_dataset(
        num_images=1,
        seed=scene_seed,
        image_length=_SWEEP_LENGTH,
        image_width=_SWEEP_WIDTH,
        half="left",
    )
    return training, dataset[0]


def _sweep_attack_config(args: argparse.Namespace) -> AttackConfig:
    return AttackConfig(
        nsga=NSGAConfig(
            num_iterations=args.iterations, population_size=args.population, seed=0
        ),
        region=HalfImageRegion("right"),
    )


def _run_transfer(args: argparse.Namespace) -> int:
    training, sample = _sweep_protocol(args.scene_seed)
    specs = [
        ModelSpec(args.architecture, seed, training=training)
        for seed in range(1, args.models + 1)
    ]
    result = run_transferability_experiment(
        specs,
        sample.image,
        _sweep_attack_config(args),
        **_engine_kwargs(args),
    )
    print(format_table(result.as_rows()))
    print(
        f"white-box obj_degrad: {result.self_degradation():.3f}, "
        f"transferred obj_degrad: {result.transfer_degradation():.3f}, "
        f"transfer gap: {result.transfer_gap():.3f}"
    )
    _print_execution_summary(result.execution)
    if args.output:
        path = save_transfer_result(result, args.output)
        print(f"Saved transferability report to {path}")
    return 0


def _run_defend(args: argparse.Namespace) -> int:
    training, sample = _sweep_protocol(args.scene_seed)
    config = _sweep_attack_config(args)
    undefended = ModelSpec(args.detector, args.seed, training=training)
    defended = DefendedModelSpec(
        base=undefended,
        augmentation=NoiseAugmentationConfig(augmented_copies=args.augmented_copies),
        training=training,
    )
    evaluation = evaluate_defense(
        undefended,
        defended,
        sample.image,
        sample.ground_truth,
        config,
        **_engine_kwargs(args),
    )
    print(format_table(evaluation.summary_rows()))
    print(
        f"robustness gain: {evaluation.robustness_gain:+.3f} "
        f"(attack still succeeds: {evaluation.attack_still_succeeds})"
    )
    _print_execution_summary(evaluation.execution)

    ensemble_evaluation = None
    if args.ensemble:
        members = [
            ModelSpec(args.detector, seed, training=training)
            for seed in range(1, args.ensemble + 1)
        ]
        ensemble_evaluation = ensemble_defense_evaluation(
            members,
            sample.image,
            config,
            **_engine_kwargs(args),
        )
        member_mean = (
            sum(ensemble_evaluation.member_degradations)
            / len(ensemble_evaluation.member_degradations)
        )
        print(
            f"Ensemble of {len(members)}: fused obj_degrad="
            f"{ensemble_evaluation.fused_degradation:.3f}, member mean="
            f"{member_mean:.3f}, fusion helps: {ensemble_evaluation.fusion_helps}"
        )

    if args.output:
        path = save_defense_evaluation(evaluation, args.output)
        print(f"Saved defense evaluation to {path}")
        if ensemble_evaluation is not None:
            ensemble_path = save_ensemble_defense_evaluation(
                ensemble_evaluation, path / "ensemble"
            )
            print(f"Saved ensemble-defense evaluation to {ensemble_path}")
    return 0


def _run_sequence(args: argparse.Namespace) -> int:
    spec = SequenceSpec(
        num_frames=args.frames,
        seed=args.scene_seed,
        image_length=_SWEEP_LENGTH,
        image_width=_SWEEP_WIDTH,
        half="left",
        max_speed=args.max_speed,
    )
    training = TrainingConfig(image_length=_SWEEP_LENGTH, image_width=_SWEEP_WIDTH)
    sweep = run_sequence_sweep(
        architectures=[args.detector],
        seeds=range(1, args.models + 1),
        sequences=[spec],
        attack_config=_sweep_attack_config(args),
        training=training,
        track_k=args.track_k,
        iou_threshold=args.iou_threshold,
        frame_cache_size=args.frame_cache_size,
        **_engine_kwargs(args),
    )
    rows = []
    for result in sweep.results:
        front = result.pareto_front
        best_degradation = (
            min(solution.degradation for solution in front) if front else 1.0
        )
        best_survival = (
            min(solution.extras.get("track_survival", 1.0) for solution in front)
            if front
            else 1.0
        )
        frame_stats = (result.incremental or {}).get("frame_cache", {})
        rows.append(
            {
                "run": result.detector_name,
                "front": len(front),
                "best_degrad": best_degradation,
                "best_track_survival": best_survival,
                "frame_hit_rate": f"{frame_stats.get('frame_hit_rate', 0.0):.1%}",
            }
        )
    print(format_table(rows))
    print(
        f"mean best track survival: {sweep.mean_track_survival():.3f} "
        f"(track suppressed = undetected for >= {args.track_k} consecutive frames)"
    )
    _print_execution_summary(sweep.provenance())
    if args.output and sweep.results:
        path = save_attack_result(sweep.results[0], args.output)
        print(f"Saved first sequence attack result to {path}")
    return 0


def _run_figures(args: argparse.Namespace) -> int:
    config = AttackConfig(
        nsga=NSGAConfig(
            num_iterations=args.iterations, population_size=args.population, seed=0
        ),
        region=region_from_name("right"),
    )
    if args.name == "fig1":
        outcome = figure1_disappearing_objects(
            build_detector("detr", seed=1), attack_config=config
        )
    elif args.name == "fig3-4":
        outcome = figure3_figure4_contrast(
            build_detector("yolo", seed=1),
            build_detector("detr", seed=1),
            attack_config=config,
        )
    else:
        outcome = figure5_ghost_objects(
            build_detector("detr", seed=1), attack_config=config
        )
    print(outcome.summary())
    if outcome.rendering:
        print(outcome.rendering)
    return 0


def _run_table(args: argparse.Namespace) -> int:
    if args.name == "1":
        print(format_table(experiment_table_rows(ExperimentConfig.paper())))
    else:
        print(format_table(nsga_table_rows(NSGA_TABLE_II)))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "attack": _run_attack,
        "compare": _run_compare,
        "transfer": _run_transfer,
        "defend": _run_defend,
        "sequence": _run_sequence,
        "figures": _run_figures,
        "table": _run_table,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
