"""Reproduction of the Butterfly Effect Attack (DATE 2023).

The package is organised bottom-up:

* :mod:`repro.detection` — bounding boxes, predictions, matching, metrics,
* :mod:`repro.data` — synthetic KITTI-like scenes and sequences,
* :mod:`repro.nn` — pure-NumPy neural-network primitives,
* :mod:`repro.detectors` — simulated single-stage and transformer detectors,
* :mod:`repro.nsga` — the NSGA-II multi-objective genetic algorithm,
* :mod:`repro.core` — the butterfly-effect attack (objectives, masks,
  orchestration, ensemble and temporal extensions),
* :mod:`repro.baselines` — comparison attacks,
* :mod:`repro.analysis` — heatmaps, error classification and reporting,
* :mod:`repro.experiments` — configuration and runners for the paper's
  tables and figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
