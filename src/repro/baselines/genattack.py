"""GenAttack-style single-objective genetic baseline.

GenAttack (Alzantot et al., GECCO 2019) attacks classifiers with a
gradient-free genetic algorithm whose single objective is to change the
predicted class; the perturbation magnitude is controlled by a fixed
L∞ bound instead of being optimised.  This baseline transplants that recipe
to object detection so the paper's two key differences can be measured:

1. single-objective (degradation only) vs the butterfly attack's three
   objectives,
2. perturbation bound as a hyper-parameter vs an optimised objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.masks import FilterMask, apply_mask
from repro.core.objectives import objective_degradation
from repro.core.regions import FullImageRegion, Region
from repro.detection.prediction import Prediction
from repro.detectors.base import Detector


@dataclass(frozen=True)
class GenAttackConfig:
    """Configuration of the GenAttack-style baseline.

    Attributes
    ----------
    population_size, num_iterations:
        Budget of the genetic search.
    linf_bound:
        Fixed L∞ bound of the perturbation (GenAttack's ``δ_max``); this is
        a hyper-parameter, *not* an optimised objective.
    mutation_rate:
        Per-pixel probability of mutation.
    mutation_scale:
        Scale of the mutation noise relative to ``linf_bound``.
    elite_fraction:
        Fraction of the population kept unchanged each generation.
    seed:
        Random seed.
    """

    population_size: int = 16
    num_iterations: int = 20
    linf_bound: float = 16.0
    mutation_rate: float = 0.01
    mutation_scale: float = 0.5
    elite_fraction: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if self.linf_bound <= 0:
            raise ValueError("linf_bound must be positive")
        if not 0.0 < self.elite_fraction <= 1.0:
            raise ValueError("elite_fraction must be in (0, 1]")


@dataclass
class GenAttackResult:
    """Outcome of the single-objective baseline."""

    best_mask: FilterMask
    best_degradation: float
    clean_prediction: Prediction
    history: list[float] = field(default_factory=list)
    num_evaluations: int = 0

    @property
    def is_successful(self) -> bool:
        return self.best_degradation < 1.0 - 1e-9


class GenAttackBaseline:
    """Single-objective genetic attack minimising only obj_degrad."""

    def __init__(
        self,
        detector: Detector,
        config: GenAttackConfig | None = None,
        region: Region | None = None,
    ) -> None:
        self.detector = detector
        self.config = config if config is not None else GenAttackConfig()
        self.region = region if region is not None else FullImageRegion()

    def _project(self, mask: np.ndarray) -> np.ndarray:
        bounded = np.clip(mask, -self.config.linf_bound, self.config.linf_bound)
        return self.region.project(bounded)

    def _fitness(
        self, image: np.ndarray, clean: Prediction, mask: np.ndarray
    ) -> float:
        perturbed = self.detector.predict(apply_mask(image, mask))
        return objective_degradation(clean, perturbed)

    def _fitness_population(
        self, image: np.ndarray, clean: Prediction, masks: list[np.ndarray]
    ) -> np.ndarray:
        """Degradation fitness of a whole population via one batched pass.

        The stacked apply/predict pipeline matches :meth:`_fitness` per mask
        bit for bit (same broadcasted add/clip, same detector fast path).
        """
        perturbed_images = np.clip(image[None, ...] + np.stack(masks, axis=0), 0.0, 255.0)
        predictions = self.detector.predict_batch(perturbed_images)
        return np.array(
            [objective_degradation(clean, prediction) for prediction in predictions]
        )

    def attack(self, image: np.ndarray) -> GenAttackResult:
        """Run the single-objective search against one image."""
        image = np.asarray(image, dtype=np.float64)
        rng = np.random.default_rng(self.config.seed)
        clean = self.detector.predict(image)

        population = [
            self._project(
                rng.uniform(
                    -self.config.linf_bound, self.config.linf_bound, size=image.shape
                )
            )
            for _ in range(self.config.population_size)
        ]
        fitness = self._fitness_population(image, clean, population)
        evaluations = len(population)
        history = [float(fitness.min())]

        num_elite = max(1, int(round(self.config.elite_fraction * len(population))))
        for _ in range(self.config.num_iterations):
            order = np.argsort(fitness)
            elites = [population[i] for i in order[:num_elite]]

            # Fitness-proportional selection on (1 - degradation).
            weights = 1.0 - fitness + 1e-6
            probabilities = weights / weights.sum()

            children: list[np.ndarray] = list(elites)
            while len(children) < self.config.population_size:
                parent_indices = rng.choice(
                    len(population), size=2, p=probabilities, replace=True
                )
                alpha = rng.random()
                child = (
                    alpha * population[parent_indices[0]]
                    + (1 - alpha) * population[parent_indices[1]]
                )
                mutation_mask = rng.random(child.shape) < self.config.mutation_rate
                noise = rng.uniform(
                    -self.config.mutation_scale * self.config.linf_bound,
                    self.config.mutation_scale * self.config.linf_bound,
                    size=child.shape,
                )
                child = child + mutation_mask * noise
                children.append(self._project(child))

            population = children
            fitness = self._fitness_population(image, clean, population)
            evaluations += len(population)
            history.append(float(fitness.min()))

        best_index = int(np.argmin(fitness))
        return GenAttackResult(
            best_mask=FilterMask(population[best_index]),
            best_degradation=float(fitness[best_index]),
            clean_prediction=clean,
            history=history,
            num_evaluations=evaluations,
        )
