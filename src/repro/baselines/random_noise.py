"""Random-noise robustness baseline.

Adding random Gaussian or salt-and-pepper noise over the whole image is the
classic robustness test the paper's introduction argues is insufficient:
"training by randomly adding noise over the complete image is insufficient
for achieving robustness".  This baseline measures how much random noise of
a given strength degrades the prediction, for comparison with the targeted
butterfly masks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.masks import FilterMask
from repro.core.objectives import objective_degradation, objective_intensity
from repro.core.regions import FullImageRegion, Region
from repro.data.noise import gaussian_mask, salt_and_pepper_mask
from repro.detection.prediction import Prediction
from repro.detectors.base import Detector


@dataclass
class RandomNoiseResult:
    """Degradation statistics of random noise at one strength level."""

    sigma: float
    mean_degradation: float
    min_degradation: float
    mean_intensity: float
    num_trials: int

    def as_row(self) -> dict[str, float]:
        """Dictionary row for tabular reporting."""
        return {
            "sigma": self.sigma,
            "mean_degradation": self.mean_degradation,
            "min_degradation": self.min_degradation,
            "mean_intensity": self.mean_intensity,
            "num_trials": float(self.num_trials),
        }


class RandomNoiseAttack:
    """Measures prediction degradation under untargeted random noise."""

    def __init__(
        self,
        detector: Detector,
        region: Region | None = None,
        noise_type: str = "gaussian",
        seed: int = 0,
    ) -> None:
        if noise_type not in ("gaussian", "salt_and_pepper"):
            raise ValueError("noise_type must be 'gaussian' or 'salt_and_pepper'")
        self.detector = detector
        self.region = region if region is not None else FullImageRegion()
        self.noise_type = noise_type
        self.seed = seed

    def _sample_mask(
        self, shape: tuple[int, int, int], sigma: float, rng: np.random.Generator
    ) -> np.ndarray:
        if self.noise_type == "gaussian":
            mask = gaussian_mask(shape, sigma, rng)
        else:
            # For salt-and-pepper, ``sigma`` is interpreted as the affected
            # pixel fraction in percent.
            mask = salt_and_pepper_mask(shape, min(1.0, sigma / 100.0), rng)
        return self.region.project(mask)

    def evaluate(
        self,
        image: np.ndarray,
        sigmas: Sequence[float] = (4.0, 8.0, 16.0, 32.0, 64.0),
        trials_per_sigma: int = 5,
    ) -> list[RandomNoiseResult]:
        """Sweep noise strengths and measure the degradation objective."""
        if trials_per_sigma < 1:
            raise ValueError("trials_per_sigma must be at least 1")
        image = np.asarray(image, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        clean: Prediction = self.detector.predict(image)

        results: list[RandomNoiseResult] = []
        for sigma in sigmas:
            degradations, intensities = [], []
            for _ in range(trials_per_sigma):
                mask = self._sample_mask(image.shape, sigma, rng)
                perturbed = self.detector.predict(FilterMask(mask).apply(image))
                degradations.append(objective_degradation(clean, perturbed))
                intensities.append(objective_intensity(mask))
            results.append(
                RandomNoiseResult(
                    sigma=float(sigma),
                    mean_degradation=float(np.mean(degradations)),
                    min_degradation=float(np.min(degradations)),
                    mean_intensity=float(np.mean(intensities)),
                    num_trials=trials_per_sigma,
                )
            )
        return results
