"""Finite-difference (gradient-estimation) baseline.

The related work cites black-box attacks that approximate gradients with
finite differences (Bhagoji et al.).  This baseline estimates the gradient
of the degradation objective with respect to coarse image blocks and takes
signed steps — an FGSM-like procedure without access to model internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.masks import FilterMask, apply_mask
from repro.core.objectives import objective_degradation
from repro.core.regions import FullImageRegion, Region
from repro.detection.prediction import Prediction
from repro.detectors.base import Detector


@dataclass(frozen=True)
class FiniteDifferenceConfig:
    """Configuration of the finite-difference baseline.

    Attributes
    ----------
    block:
        Side length (pixels) of the blocks whose sensitivity is probed; the
        gradient is estimated per block, not per pixel, to keep the number
        of detector queries manageable.
    probe_magnitude:
        Perturbation magnitude used when probing a block's sensitivity.
    step_size:
        Magnitude of the signed step taken along the estimated gradient.
    num_steps:
        Number of gradient-estimation / step iterations.
    linf_bound:
        Overall L∞ bound of the accumulated perturbation.
    """

    block: int = 16
    probe_magnitude: float = 24.0
    step_size: float = 12.0
    num_steps: int = 2
    linf_bound: float = 48.0

    def __post_init__(self) -> None:
        if self.block <= 0:
            raise ValueError("block must be positive")
        if self.num_steps < 1:
            raise ValueError("num_steps must be at least 1")


@dataclass
class FiniteDifferenceResult:
    """Outcome of the finite-difference baseline."""

    best_mask: FilterMask
    best_degradation: float
    clean_prediction: Prediction
    num_evaluations: int = 0
    sensitivity_map: np.ndarray | None = None


class FiniteDifferenceAttack:
    """Block-wise gradient-estimation attack on the degradation objective."""

    def __init__(
        self,
        detector: Detector,
        config: FiniteDifferenceConfig | None = None,
        region: Region | None = None,
    ) -> None:
        self.detector = detector
        self.config = config if config is not None else FiniteDifferenceConfig()
        self.region = region if region is not None else FullImageRegion()

    def attack(self, image: np.ndarray) -> FiniteDifferenceResult:
        """Estimate block sensitivities and take signed steps."""
        image = np.asarray(image, dtype=np.float64)
        clean = self.detector.predict(image)
        allowed = self.region.pixel_mask(image.shape[0], image.shape[1])

        block = self.config.block
        rows = image.shape[0] // block
        cols = image.shape[1] // block
        mask = np.zeros_like(image)
        evaluations = 0
        sensitivity = np.zeros((rows, cols))

        for _ in range(self.config.num_steps):
            base_degradation = objective_degradation(
                clean, self.detector.predict(apply_mask(image, mask))
            )
            evaluations += 1
            # Query the detector over stacked probe batches instead of one
            # at a time; the per-probe degradation values match the scalar
            # loop bit for bit.  Probe masks are materialised per chunk of
            # 32 cells so peak memory stays bounded regardless of how many
            # blocks the image has.
            probe_cells = [
                (row, col)
                for row in range(rows)
                for col in range(cols)
                if allowed[
                    row * block : (row + 1) * block, col * block : (col + 1) * block
                ].any()
            ]
            for start in range(0, len(probe_cells), 32):
                cells = probe_cells[start : start + 32]
                probes = []
                for row, col in cells:
                    probe = mask.copy()
                    probe[
                        row * block : (row + 1) * block,
                        col * block : (col + 1) * block,
                        :,
                    ] += self.config.probe_magnitude
                    probes.append(self.region.project(probe))
                perturbed_images = np.clip(
                    image[None, ...] + np.stack(probes, axis=0), 0.0, 255.0
                )
                predictions = self.detector.predict_batch(perturbed_images)
                evaluations += len(probes)
                for (row, col), prediction in zip(cells, predictions):
                    sensitivity[row, col] = base_degradation - objective_degradation(
                        clean, prediction
                    )

            # Take a signed step on every block whose probe reduced the
            # degradation objective (i.e. made the attack stronger).
            for row in range(rows):
                for col in range(cols):
                    if sensitivity[row, col] <= 0:
                        continue
                    row_slice = slice(row * block, (row + 1) * block)
                    col_slice = slice(col * block, (col + 1) * block)
                    mask[row_slice, col_slice, :] += self.config.step_size
            mask = np.clip(mask, -self.config.linf_bound, self.config.linf_bound)
            mask = self.region.project(mask)

        final_degradation = objective_degradation(
            clean, self.detector.predict(apply_mask(image, mask))
        )
        evaluations += 1
        return FiniteDifferenceResult(
            best_mask=FilterMask(mask),
            best_degradation=float(final_degradation),
            clean_prediction=clean,
            num_evaluations=evaluations,
            sensitivity_map=sensitivity,
        )
