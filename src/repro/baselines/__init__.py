"""Baseline attacks for comparison.

The related-work section of the paper positions the butterfly attack against
other black-box strategies.  Three baselines are provided:

* :class:`GenAttackBaseline` — a GenAttack-style single-objective genetic
  attack (the closest related work): the only optimised objective is the
  performance degradation, with the perturbation bound handled as a fixed
  hyper-parameter rather than an objective,
* :class:`RandomNoiseAttack` — random Gaussian / salt-and-pepper noise of
  increasing strength (the classic robustness-testing baseline),
* :class:`FiniteDifferenceAttack` — a grey-box attack estimating the
  degradation gradient with finite differences on a coarse grid.
"""

from repro.baselines.genattack import GenAttackBaseline, GenAttackConfig
from repro.baselines.random_noise import RandomNoiseAttack, RandomNoiseResult
from repro.baselines.finite_difference import (
    FiniteDifferenceAttack,
    FiniteDifferenceConfig,
)

__all__ = [
    "GenAttackBaseline",
    "GenAttackConfig",
    "RandomNoiseAttack",
    "RandomNoiseResult",
    "FiniteDifferenceAttack",
    "FiniteDifferenceConfig",
]
