"""Defense sweep jobs for the generic experiment plan/engine.

The defense evaluation asks three questions under the *same* attack budget
— how hard is the undefended detector to attack, how hard is the
noise-augmented (defended) variant, and does ensemble fusion suppress the
induced errors?  Each question is one picklable job following the generic
protocol of :mod:`repro.experiments.jobs`, so the whole evaluation runs on
any execution backend with bit-identical results:

* :class:`DefendedModelSpec` — a picklable recipe for a defended detector:
  a base :class:`~repro.experiments.jobs.ModelSpec` plus the
  noise-augmentation refit (config, training protocol, defense seed).
  Like every spec it memoises per process, so pool workers retrain a
  defended variant at most once.
* :class:`DefenseAttackJob` — attack one variant (undefended or defended)
  and measure its clean recall against the scene's ground truth.
* :class:`EnsembleDefenseJob` — attack an ensemble's aggregate objective,
  then measure per-member and fused-prediction damage, reusing each
  member's cached clean activations for the mask evaluations instead of
  dense re-predicts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.ensemble import EnsembleAttack
from repro.core.objectives import objective_degradation
from repro.core.results import AttackResult
from repro.defenses.augmentation import (
    NoiseAugmentationConfig,
    noise_augmented_detector,
)
from repro.detection.metrics import precision_recall
from repro.detection.prediction import Prediction
from repro.detectors.base import Detector
from repro.detectors.ensemble import DetectorEnsemble
from repro.detectors.training import TrainingConfig
from repro.experiments.jobs import (
    JobOutcome,
    ModelSpec,
    WorkerContext,
    build_cached,
    seed_from_sequence,
)

#: Reserved ``spawn_key`` branch of the experiment ``SeedSequence`` used for
#: defense-retraining entropy.  Plan-position job seeds occupy the spawned
#: children ``spawn_key=(0,) .. (n-1,)``; defense plans have at most a
#: handful of jobs, so branching at 1000 can never collide with a job seed.
DEFENSE_SEED_SPAWN_KEY = 1000


def derive_defense_seed(experiment_seed: int) -> int:
    """Spawn-safe defense-retraining seed derived from the experiment seed.

    Same two-word collapse as the engine's per-job NSGA seeds
    (:func:`repro.experiments.jobs.seed_from_sequence`), taken from a
    reserved branch of the experiment's ``SeedSequence`` tree so it is
    independent of the plan's job seeds, worker scheduling and completion
    order.
    """
    if experiment_seed < 0:
        raise ValueError(
            f"experiment_seed must be non-negative, got {experiment_seed}"
        )
    return seed_from_sequence(
        np.random.SeedSequence(experiment_seed, spawn_key=(DEFENSE_SEED_SPAWN_KEY,))
    )


@dataclass(frozen=True)
class DefendedModelSpec:
    """Recipe for a noise-augmentation-defended detector, picklable.

    ``build()`` constructs a fresh base detector from ``base`` and refits
    its prototype head on noise-augmented scenes — the base is never a
    shared instance, so the refit's in-place mutation is contained.
    ``defense_seed`` pins the augmentation entropy (``None`` keeps the
    historical default, the detector's own seed); spawn-safe derived seeds
    from an experiment ``SeedSequence`` are collapsed integers, see
    :func:`repro.experiments.jobs.seed_from_sequence`.
    """

    base: ModelSpec
    augmentation: NoiseAugmentationConfig = field(
        default_factory=NoiseAugmentationConfig
    )
    training: TrainingConfig | None = None
    defense_seed: int | None = None

    @property
    def label(self) -> str:
        return self.base.label

    @property
    def seed(self) -> int:
        return self.base.seed

    @property
    def name(self) -> str:
        return f"{self.base.name}-noise_defended"

    def build(self) -> Detector:
        detector = self.base.build()
        return noise_augmented_detector(
            detector,
            training=self.training if self.training is not None else self.base.training,
            augmentation=self.augmentation,
            seed=self.defense_seed,
        )


@dataclass
class DefenseJobResult:
    """One defense job's payload: the attack outcome plus clean recall."""

    role: str
    attack_result: AttackResult
    best_degradation: float
    clean_recall: float


@dataclass
class DefenseAttackJob:
    """Attack one detector variant and measure its clean recall.

    ``role`` tags the variant (``"undefended"`` / ``"defended"``) so the
    orchestrator can reassemble the comparison from plan-ordered outcomes.
    The clean prediction for the recall measurement is taken from the
    cached clean activations when available (bit-identical to a dense
    ``predict`` by the activation-cache contract).
    """

    job_id: int
    model: object
    image: np.ndarray
    ground_truth: Prediction
    config: AttackConfig = field(default_factory=AttackConfig)
    role: str = "undefended"
    recall_iou_threshold: float = 0.3
    nsga_seed: int | None = None

    def __post_init__(self) -> None:
        self.image = np.asarray(self.image, dtype=np.float64)

    def resolved_config(self) -> AttackConfig:
        if self.nsga_seed is None:
            return self.config
        return replace(
            self.config, nsga=replace(self.config.nsga, seed=int(self.nsga_seed))
        )

    def execute(self, context: WorkerContext) -> JobOutcome:
        start = time.perf_counter()
        detector = build_cached(self.model)
        config = self.resolved_config()
        use_store = context.job_store(config)
        before = use_store.snapshot() if use_store is not None else None

        attack = ButterflyAttack(detector, config, activation_store=use_store)
        result = attack.attack(self.image)
        result.architecture = getattr(self.model, "label", "")
        result.model_seed = getattr(self.model, "seed", None)
        result.job_id = self.job_id

        clean = (
            use_store.get(detector, self.image) if use_store is not None else None
        )
        clean_prediction = (
            clean.prediction if clean is not None else detector.predict(self.image)
        )
        _, clean_recall = precision_recall(
            clean_prediction, self.ground_truth, iou_threshold=self.recall_iou_threshold
        )

        stats = use_store.snapshot() - before if use_store is not None else None
        return JobOutcome(
            job_id=self.job_id,
            result=DefenseJobResult(
                role=self.role,
                attack_result=result,
                best_degradation=result.best_by("degradation").degradation,
                clean_recall=clean_recall,
            ),
            cache_stats=stats,
            duration_seconds=time.perf_counter() - start,
        )


@dataclass
class EnsembleDefenseJobResult:
    """The ensemble job's payload: attack outcome plus fusion damage."""

    attack_result: AttackResult
    member_degradations: list[float]
    fused_degradation: float


@dataclass
class EnsembleDefenseJob:
    """Attack an ensemble jointly, then measure fused-prediction damage.

    The attack optimises the Eq. 1-3 aggregate objectives; the evaluation
    then asks whether majority-vote fusion (the standard ensemble defence)
    still suppresses the induced errors.  Per-member damage is measured by
    routing the best mask through each member's cached clean activations
    (:meth:`~repro.detectors.base.Detector.predict_delta` with the exact
    dirty bound) and fusion reuses those same per-member predictions —
    no member re-predicts the clean or perturbed scene densely.
    """

    job_id: int
    members: tuple
    image: np.ndarray
    config: AttackConfig = field(default_factory=AttackConfig)
    vote_fraction: float = 0.5
    nsga_seed: int | None = None

    def __post_init__(self) -> None:
        self.image = np.asarray(self.image, dtype=np.float64)
        self.members = tuple(self.members)

    @property
    def stats_label(self) -> str:
        return "ensemble[" + "+".join(spec.name for spec in self.members) + "]"

    def resolved_config(self) -> AttackConfig:
        if self.nsga_seed is None:
            return self.config
        return replace(
            self.config, nsga=replace(self.config.nsga, seed=int(self.nsga_seed))
        )

    def execute(self, context: WorkerContext) -> JobOutcome:
        start = time.perf_counter()
        detectors = [build_cached(spec) for spec in self.members]
        ensemble = DetectorEnsemble(detectors)
        config = self.resolved_config()
        use_store = context.job_store(config)
        before = use_store.snapshot() if use_store is not None else None

        attack = EnsembleAttack(ensemble, config, activation_store=use_store)
        result = attack.attack(self.image)
        result.job_id = self.job_id
        best = result.best_by("degradation")
        mask = best.mask.values
        dirty_bound = best.mask.nonzero_bbox()

        clean_all = [
            use_store.get(member, self.image) if use_store is not None else None
            for member in detectors
        ]
        member_clean = [
            clean.prediction if clean is not None else member.predict(self.image)
            for member, clean in zip(detectors, clean_all)
        ]
        member_perturbed = [
            member.predict_delta(self.image, mask, dirty_bound, clean)
            for member, clean in zip(detectors, clean_all)
        ]
        member_degradations = [
            objective_degradation(clean, perturbed)
            for clean, perturbed in zip(member_clean, member_perturbed)
        ]

        fused_clean = ensemble.predict_fused(
            self.image, vote_fraction=self.vote_fraction, predictions=member_clean
        )
        fused_perturbed = ensemble.predict_fused(
            self.image, vote_fraction=self.vote_fraction, predictions=member_perturbed
        )
        fused_degradation = objective_degradation(fused_clean, fused_perturbed)

        stats = use_store.snapshot() - before if use_store is not None else None
        return JobOutcome(
            job_id=self.job_id,
            result=EnsembleDefenseJobResult(
                attack_result=result,
                member_degradations=member_degradations,
                fused_degradation=fused_degradation,
            ),
            cache_stats=stats,
            duration_seconds=time.perf_counter() - start,
        )
