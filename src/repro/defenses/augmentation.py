"""Noise-augmented prototype training (the classic robustness recipe).

The defence retrains a detector's prototype head on scenes corrupted with
random Gaussian and salt-and-pepper noise, exactly the data-augmentation
strategy the paper's introduction calls insufficient.  The detector's
backbone (and therefore its connectivity) is unchanged — only the prototype
statistics see noisy inputs.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass

import numpy as np

from repro.data.noise import add_gaussian_noise, add_salt_and_pepper_noise
from repro.data.renderer import render_scene
from repro.detectors.base import Detector
from repro.detectors.prototypes import PrototypeBank
from repro.detectors.training import TrainingConfig, _training_scenes, kmeans, label_cells


@dataclass(frozen=True)
class NoiseAugmentationConfig:
    """Configuration of the noise-augmentation defence.

    Attributes
    ----------
    gaussian_sigma:
        Standard deviation of the Gaussian noise added to training scenes.
    salt_and_pepper_amount:
        Fraction of pixels hit by salt-and-pepper noise.
    augmented_copies:
        Number of noisy copies of every training scene (the clean copy is
        always included as well).
    """

    gaussian_sigma: float = 12.0
    salt_and_pepper_amount: float = 0.01
    augmented_copies: int = 2

    def __post_init__(self) -> None:
        if self.gaussian_sigma < 0:
            raise ValueError("gaussian_sigma must be non-negative")
        if not 0.0 <= self.salt_and_pepper_amount <= 1.0:
            raise ValueError("salt_and_pepper_amount must be in [0, 1]")
        if self.augmented_copies < 1:
            raise ValueError("augmented_copies must be at least 1")


def noise_augmented_detector(
    detector: Detector,
    training: TrainingConfig | None = None,
    augmentation: NoiseAugmentationConfig | None = None,
    seed: "int | np.random.SeedSequence | None" = None,
    copy: bool = False,
) -> Detector:
    """Refit the detector's prototype head on noise-augmented scenes.

    .. warning::
       By default the passed detector is **mutated in place** (its
       ``prototypes`` attribute is replaced) and returned, mirroring
       :func:`repro.detectors.training.train_detector`.  Pass
       ``copy=True`` to refit a deep copy instead and leave the original
       untouched — callers holding a shared detector should opt in.  (The
       defense sweep's defended-variant spec doesn't need to: it always
       refits a freshly built base.)

    ``seed`` may be a bare int (the historical interface, default: the
    detector's own seed) or a ``numpy.random.SeedSequence`` — e.g. a child
    spawned from an experiment seed — which is collapsed to an integer via
    :func:`repro.experiments.jobs.seed_from_sequence`, so defense
    retraining entropy is assigned spawn-safely and independently of
    scheduling, exactly like the engine's per-job NSGA seeds.
    """
    training = training if training is not None else TrainingConfig()
    augmentation = augmentation if augmentation is not None else NoiseAugmentationConfig()
    if isinstance(seed, np.random.SeedSequence):
        from repro.experiments.jobs import seed_from_sequence

        seed = seed_from_sequence(seed)
    seed = seed if seed is not None else detector.seed
    if copy:
        detector = _copy.deepcopy(detector)
    rng = np.random.default_rng(seed * 33301 + 5)

    scenes = _training_scenes(training, seed)
    cell = detector.config.cell

    class_features: dict[int, list[np.ndarray]] = {int(c): [] for c in training.classes}
    background_features: list[np.ndarray] = []

    for scene in scenes:
        clean_image = render_scene(scene)
        variants = [clean_image]
        for _ in range(augmentation.augmented_copies):
            noisy = add_gaussian_noise(clean_image, augmentation.gaussian_sigma, rng)
            noisy = add_salt_and_pepper_noise(
                noisy, augmentation.salt_and_pepper_amount, rng
            )
            variants.append(noisy)

        for image in variants:
            features = detector.backbone_features(image)
            labels = label_cells(
                scene, features.shape[:2], cell, training.coverage_threshold
            )
            for class_id in training.classes:
                mask = labels == int(class_id)
                if mask.any():
                    class_features[int(class_id)].append(features[mask])
            background_features.append(features[labels == -1])

    feature_dim = background_features[0].shape[-1]
    num_classes = len(training.classes)
    class_prototypes = np.zeros((num_classes, feature_dim))
    for index, class_id in enumerate(training.classes):
        samples = class_features[int(class_id)]
        if samples:
            class_prototypes[index] = np.concatenate(samples, axis=0).mean(axis=0)
        else:
            class_prototypes[index] = np.full(feature_dim, 1e3)

    background_prototypes = kmeans(
        np.concatenate(background_features, axis=0), training.background_clusters, rng
    )

    squared_dists: list[float] = []
    for index, class_id in enumerate(training.classes):
        for sample in class_features[int(class_id)]:
            diffs = sample - class_prototypes[index]
            squared_dists.extend(np.sum(diffs**2, axis=-1).tolist())
    temperature = max(float(np.mean(squared_dists)) if squared_dists else 0.05, 1e-4)

    detector.prototypes = PrototypeBank(  # type: ignore[attr-defined]
        class_prototypes=class_prototypes,
        background_prototypes=background_prototypes,
        temperature=temperature,
        background_bias=detector.config.background_bias,
    )
    return detector
