"""Defence evaluation.

The paper's introduction argues that "training by randomly adding noise
over the complete image is insufficient for achieving robustness" against
butterfly-effect perturbations, and its Section IV-B shows the attack can be
aimed at ensembles (a common adversarial defence).  This package provides
the machinery to test both claims on the simulated substrate:

* :func:`noise_augmented_detector` — retrains a detector's prototype head on
  noise-augmented scenes (the classic robustness recipe),
* :class:`DefenseEvaluation` / :func:`evaluate_defense` — attacks an
  undefended and a defended detector with the same budget and compares the
  outcome,
* :func:`ensemble_defense_evaluation` — measures how much an ensemble's
  fused (consensus) prediction is affected by a mask optimised against the
  whole ensemble.
"""

from repro.defenses.augmentation import NoiseAugmentationConfig, noise_augmented_detector
from repro.defenses.evaluation import (
    DefenseEvaluation,
    EnsembleDefenseEvaluation,
    build_defense_plan,
    ensemble_defense_evaluation,
    ensemble_defense_evaluation_reference,
    evaluate_defense,
    evaluate_defense_reference,
)
from repro.defenses.jobs import (
    DefendedModelSpec,
    DefenseAttackJob,
    DefenseJobResult,
    EnsembleDefenseJob,
    EnsembleDefenseJobResult,
    derive_defense_seed,
)

__all__ = [
    "NoiseAugmentationConfig",
    "noise_augmented_detector",
    "DefenseEvaluation",
    "EnsembleDefenseEvaluation",
    "build_defense_plan",
    "ensemble_defense_evaluation",
    "ensemble_defense_evaluation_reference",
    "evaluate_defense",
    "evaluate_defense_reference",
    "DefendedModelSpec",
    "DefenseAttackJob",
    "DefenseJobResult",
    "EnsembleDefenseJob",
    "EnsembleDefenseJobResult",
    "derive_defense_seed",
]
