"""Evaluating defences against the butterfly-effect attack."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.ensemble import EnsembleAttack
from repro.core.masks import apply_mask
from repro.core.objectives import objective_degradation
from repro.core.results import AttackResult
from repro.detection.metrics import precision_recall
from repro.detection.prediction import Prediction
from repro.detectors.base import Detector
from repro.detectors.ensemble import DetectorEnsemble


@dataclass
class DefenseEvaluation:
    """Outcome of attacking an undefended and a defended detector.

    Attributes
    ----------
    undefended_result, defended_result:
        The attack results on the two detectors.
    undefended_best_degradation, defended_best_degradation:
        Strongest obj_degrad reached on the respective fronts.
    clean_recall_undefended, clean_recall_defended:
        Clean-image recall of both detectors (a defence that destroys clean
        accuracy is not a usable defence).
    """

    undefended_result: AttackResult
    defended_result: AttackResult
    undefended_best_degradation: float
    defended_best_degradation: float
    clean_recall_undefended: float
    clean_recall_defended: float

    @property
    def attack_still_succeeds(self) -> bool:
        """True when the defended detector is still measurably degraded."""
        return self.defended_best_degradation < 1.0 - 1e-9

    @property
    def robustness_gain(self) -> float:
        """How much harder the attack became (positive = defence helped)."""
        return self.defended_best_degradation - self.undefended_best_degradation

    def summary_rows(self) -> list[dict[str, object]]:
        """Rows for tabular reporting."""
        return [
            {
                "detector": "undefended",
                "best_degradation": self.undefended_best_degradation,
                "clean_recall": self.clean_recall_undefended,
            },
            {
                "detector": "defended",
                "best_degradation": self.defended_best_degradation,
                "clean_recall": self.clean_recall_defended,
            },
        ]


def evaluate_defense(
    undefended: Detector,
    defended: Detector,
    image: np.ndarray,
    ground_truth: Prediction,
    attack_config: AttackConfig | None = None,
) -> DefenseEvaluation:
    """Attack both detectors with the same budget and compare the outcomes."""
    attack_config = attack_config if attack_config is not None else AttackConfig.fast()

    undefended_result = ButterflyAttack(undefended, attack_config).attack(image)
    defended_result = ButterflyAttack(defended, attack_config).attack(image)

    _, recall_undefended = precision_recall(
        undefended.predict(image), ground_truth, iou_threshold=0.3
    )
    _, recall_defended = precision_recall(
        defended.predict(image), ground_truth, iou_threshold=0.3
    )

    return DefenseEvaluation(
        undefended_result=undefended_result,
        defended_result=defended_result,
        undefended_best_degradation=undefended_result.best_by("degradation").degradation,
        defended_best_degradation=defended_result.best_by("degradation").degradation,
        clean_recall_undefended=recall_undefended,
        clean_recall_defended=recall_defended,
    )


@dataclass
class EnsembleDefenseEvaluation:
    """Outcome of attacking an ensemble's fused prediction."""

    attack_result: AttackResult
    member_degradations: list[float] = field(default_factory=list)
    fused_degradation: float = 1.0

    @property
    def fusion_helps(self) -> bool:
        """True when the fused prediction is less degraded than the mean member."""
        if not self.member_degradations:
            return False
        return self.fused_degradation > float(np.mean(self.member_degradations))


def ensemble_defense_evaluation(
    ensemble: DetectorEnsemble,
    image: np.ndarray,
    attack_config: AttackConfig | None = None,
    vote_fraction: float = 0.5,
) -> EnsembleDefenseEvaluation:
    """Attack the ensemble jointly, then measure the fused-prediction damage.

    The attack optimises the Eq. 1-3 aggregate objectives; the evaluation
    then asks whether majority-vote fusion (the standard ensemble defence)
    still suppresses the induced errors.
    """
    attack_config = attack_config if attack_config is not None else AttackConfig.fast()
    result = EnsembleAttack(ensemble, attack_config).attack(image)
    best = result.best_by("degradation")
    perturbed_image = apply_mask(image, best.mask.values)

    member_degradations = []
    for member in ensemble:
        clean = member.predict(image)
        member_degradations.append(
            objective_degradation(clean, member.predict(perturbed_image))
        )

    fused_clean = ensemble.predict_fused(image, vote_fraction=vote_fraction)
    fused_perturbed = ensemble.predict_fused(perturbed_image, vote_fraction=vote_fraction)
    fused_degradation = objective_degradation(fused_clean, fused_perturbed)

    return EnsembleDefenseEvaluation(
        attack_result=result,
        member_degradations=member_degradations,
        fused_degradation=fused_degradation,
    )
