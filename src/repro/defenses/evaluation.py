"""Evaluating defences against the butterfly-effect attack.

Both evaluations — noise-augmentation (undefended vs defended under the
same budget) and ensemble fusion — are declarative plans over the generic
experiment engine (:mod:`repro.defenses.jobs` +
:mod:`repro.experiments.engine`): :func:`evaluate_defense` compiles a
two-job plan (one :class:`~repro.defenses.jobs.DefenseAttackJob` per
variant), :func:`ensemble_defense_evaluation` a one-job plan, and
:func:`build_defense_plan` combines undefended/defended/ensemble variants
into a single plan so a pooled backend attacks all of them concurrently.
Serial and pooled executions are bit-identical to each other and to the
preserved pre-engine loops (:func:`evaluate_defense_reference`,
:func:`ensemble_defense_evaluation_reference`), enforced by
``tests/defenses/test_evaluation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dataclasses_replace
from typing import Sequence

import numpy as np

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.ensemble import EnsembleAttack
from repro.core.masks import apply_mask
from repro.core.objectives import objective_degradation
from repro.core.results import AttackResult
from repro.defenses.jobs import (
    DefendedModelSpec,
    DefenseAttackJob,
    EnsembleDefenseJob,
    derive_defense_seed,
)
from repro.detection.metrics import precision_recall
from repro.detection.prediction import Prediction
from repro.detectors.base import Detector
from repro.detectors.ensemble import DetectorEnsemble
from repro.experiments.engine import (
    ExecutionBackend,
    RetryPolicy,
    execute_plan,
    resolve_backend,
)
from repro.experiments.jobs import (
    ExperimentPlan,
    apply_experiment_seed,
    as_model_spec,
    release_plan_models,
)


def _open_checkpoint(checkpoint_dir, resume):
    """Build a journal for one defense sweep (``None`` when not requested).

    Function-level import: ``repro.experiments.checkpoint`` pulls this
    module in (via :mod:`repro.io.serialization`) for the defense-result
    codecs, so a module-level import here would cycle.
    """
    if checkpoint_dir is None:
        return None
    from repro.experiments.checkpoint import PlanCheckpoint

    return PlanCheckpoint(checkpoint_dir, resume=resume)


@dataclass
class DefenseEvaluation:
    """Outcome of attacking an undefended and a defended detector.

    Attributes
    ----------
    undefended_result, defended_result:
        The attack results on the two detectors.
    undefended_best_degradation, defended_best_degradation:
        Strongest obj_degrad reached on the respective fronts.
    clean_recall_undefended, clean_recall_defended:
        Clean-image recall of both detectors (a defence that destroys clean
        accuracy is not a usable defence).
    execution:
        Provenance summary of the engine run that produced this report
        (backend, worker count, cache traffic); ``None`` for the reference
        loop.
    """

    undefended_result: AttackResult
    defended_result: AttackResult
    undefended_best_degradation: float
    defended_best_degradation: float
    clean_recall_undefended: float
    clean_recall_defended: float
    execution: dict | None = None

    @property
    def attack_still_succeeds(self) -> bool:
        """True when the defended detector is still measurably degraded."""
        return self.defended_best_degradation < 1.0 - 1e-9

    @property
    def robustness_gain(self) -> float:
        """How much harder the attack became (positive = defence helped)."""
        return self.defended_best_degradation - self.undefended_best_degradation

    def summary_rows(self) -> list[dict[str, object]]:
        """Rows for tabular reporting."""
        return [
            {
                "detector": "undefended",
                "best_degradation": self.undefended_best_degradation,
                "clean_recall": self.clean_recall_undefended,
            },
            {
                "detector": "defended",
                "best_degradation": self.defended_best_degradation,
                "clean_recall": self.clean_recall_defended,
            },
        ]


@dataclass
class EnsembleDefenseEvaluation:
    """Outcome of attacking an ensemble's fused prediction."""

    attack_result: AttackResult
    member_degradations: list[float] = field(default_factory=list)
    fused_degradation: float = 1.0
    execution: dict | None = None

    @property
    def fusion_helps(self) -> bool:
        """True when the fused prediction is less degraded than the mean member."""
        if not self.member_degradations:
            return False
        return self.fused_degradation > float(np.mean(self.member_degradations))


def build_defense_plan(
    undefended,
    defended,
    image: np.ndarray,
    ground_truth: Prediction,
    attack_config: AttackConfig,
    ensemble_members: Sequence = (),
    vote_fraction: float = 0.5,
    experiment_seed: int | None = None,
) -> ExperimentPlan:
    """Compile the defense sweep: undefended, defended and ensemble jobs.

    All variants share one attack budget (``attack_config``); the optional
    ``ensemble_members`` add an :class:`~repro.defenses.jobs.EnsembleDefenseJob`
    as the plan's final job.  With ``experiment_seed`` every job receives a
    plan-position-derived NSGA seed (spawn-safe, scheduling-independent),
    and a :class:`~repro.defenses.jobs.DefendedModelSpec` without a pinned
    ``defense_seed`` additionally gets its retraining entropy derived from
    the same experiment seed (:func:`~repro.defenses.jobs.derive_defense_seed`,
    a reserved ``SeedSequence`` branch) — so sweeping experiment seeds
    yields independently refit defended variants, not just different
    searches against one refit.
    """
    image = np.asarray(image, dtype=np.float64)
    defended_spec = as_model_spec(defended)
    if (
        experiment_seed is not None
        and isinstance(defended_spec, DefendedModelSpec)
        and defended_spec.defense_seed is None
    ):
        defended_spec = dataclasses_replace(
            defended_spec, defense_seed=derive_defense_seed(experiment_seed)
        )
    jobs: list = [
        DefenseAttackJob(
            job_id=0,
            model=as_model_spec(undefended),
            image=image,
            ground_truth=ground_truth,
            config=attack_config,
            role="undefended",
        ),
        DefenseAttackJob(
            job_id=1,
            model=defended_spec,
            image=image,
            ground_truth=ground_truth,
            config=attack_config,
            role="defended",
        ),
    ]
    if len(ensemble_members):
        jobs.append(
            EnsembleDefenseJob(
                job_id=2,
                members=tuple(as_model_spec(member) for member in ensemble_members),
                image=image,
                config=attack_config,
                vote_fraction=vote_fraction,
            )
        )
    apply_experiment_seed(jobs, experiment_seed)
    return ExperimentPlan(
        jobs=jobs,
        attack_config=attack_config,
        experiment_seed=experiment_seed,
        name="defense-evaluation",
    )


def _assemble_defense_evaluation(outcomes, execution_summary) -> DefenseEvaluation:
    by_role = {outcome.result.role: outcome.result for outcome in outcomes[:2]}
    undefended, defended = by_role["undefended"], by_role["defended"]
    return DefenseEvaluation(
        undefended_result=undefended.attack_result,
        defended_result=defended.attack_result,
        undefended_best_degradation=undefended.best_degradation,
        defended_best_degradation=defended.best_degradation,
        clean_recall_undefended=undefended.clean_recall,
        clean_recall_defended=defended.clean_recall,
        execution=execution_summary,
    )


def evaluate_defense(
    undefended,
    defended,
    image: np.ndarray,
    ground_truth: Prediction,
    attack_config: AttackConfig | None = None,
    *,
    n_jobs: int = 1,
    backend: "str | ExecutionBackend | None" = None,
    experiment_seed: int | None = None,
    release_models: bool = True,
    checkpoint_dir: "str | None" = None,
    resume: bool = False,
    retry: RetryPolicy | None = None,
) -> DefenseEvaluation:
    """Attack both detectors with the same budget and compare the outcomes.

    ``undefended``/``defended`` are live detectors (the historical
    interface) or picklable model specs; either way the two attacks run as
    a declarative plan on the experiment engine, so ``n_jobs``/``backend``
    fan them out over worker processes with bit-identical results.
    ``checkpoint_dir`` journals completed jobs for resume (``resume=True``)
    and ``retry`` requeues crashed/raising jobs in-run — both identical in
    behaviour to the architecture-comparison runner.
    """
    attack_config = attack_config if attack_config is not None else AttackConfig.fast()
    plan = build_defense_plan(
        undefended,
        defended,
        image,
        ground_truth,
        attack_config,
        experiment_seed=experiment_seed,
    )
    owns_backend = not isinstance(backend, ExecutionBackend)
    engine_backend = resolve_backend(backend, n_jobs=n_jobs)
    checkpoint = _open_checkpoint(checkpoint_dir, resume)
    try:
        execution = execute_plan(
            plan, engine_backend, checkpoint=checkpoint, retry=retry
        )
    finally:
        if checkpoint is not None:
            checkpoint.close()
        if release_models:
            release_plan_models(plan)
        if owns_backend:
            # Resolved from a name: the sweep owns the backend's resources;
            # a caller-provided instance is left alive for reuse.
            engine_backend.close()
    return _assemble_defense_evaluation(execution.outcomes, execution.summary())


def ensemble_defense_evaluation(
    ensemble: "DetectorEnsemble | Sequence",
    image: np.ndarray,
    attack_config: AttackConfig | None = None,
    vote_fraction: float = 0.5,
    *,
    n_jobs: int = 1,
    backend: "str | ExecutionBackend | None" = None,
    experiment_seed: int | None = None,
    release_models: bool = True,
    checkpoint_dir: "str | None" = None,
    resume: bool = False,
    retry: RetryPolicy | None = None,
) -> EnsembleDefenseEvaluation:
    """Attack the ensemble jointly, then measure the fused-prediction damage.

    The attack optimises the Eq. 1-3 aggregate objectives; the evaluation
    then asks whether majority-vote fusion (the standard ensemble defence)
    still suppresses the induced errors.  ``ensemble`` is a
    :class:`~repro.detectors.ensemble.DetectorEnsemble`, a sequence of live
    detectors, or a sequence of picklable model specs.
    """
    attack_config = attack_config if attack_config is not None else AttackConfig.fast()
    members = list(ensemble) if not isinstance(ensemble, DetectorEnsemble) else list(
        ensemble.detectors
    )
    job = EnsembleDefenseJob(
        job_id=0,
        members=tuple(as_model_spec(member) for member in members),
        image=np.asarray(image, dtype=np.float64),
        config=attack_config,
        vote_fraction=vote_fraction,
    )
    apply_experiment_seed([job], experiment_seed)
    plan = ExperimentPlan(
        jobs=[job],
        attack_config=attack_config,
        experiment_seed=experiment_seed,
        name="ensemble-defense",
    )
    owns_backend = not isinstance(backend, ExecutionBackend)
    engine_backend = resolve_backend(backend, n_jobs=n_jobs)
    checkpoint = _open_checkpoint(checkpoint_dir, resume)
    try:
        execution = execute_plan(
            plan, engine_backend, checkpoint=checkpoint, retry=retry
        )
    finally:
        if checkpoint is not None:
            checkpoint.close()
        if release_models:
            release_plan_models(plan)
        if owns_backend:
            engine_backend.close()
    payload = execution.outcomes[0].result
    return EnsembleDefenseEvaluation(
        attack_result=payload.attack_result,
        member_degradations=payload.member_degradations,
        fused_degradation=payload.fused_degradation,
        execution=execution.summary(),
    )


def evaluate_defense_reference(
    undefended: Detector,
    defended: Detector,
    image: np.ndarray,
    ground_truth: Prediction,
    attack_config: AttackConfig | None = None,
) -> DefenseEvaluation:
    """The preserved pre-engine defense loop (parity reference).

    Two serial in-process attacks plus dense clean ``predict`` calls; the
    engine-based :func:`evaluate_defense` must stay bit-identical to this.
    """
    attack_config = attack_config if attack_config is not None else AttackConfig.fast()

    undefended_result = ButterflyAttack(undefended, attack_config).attack(image)
    defended_result = ButterflyAttack(defended, attack_config).attack(image)

    _, recall_undefended = precision_recall(
        undefended.predict(image), ground_truth, iou_threshold=0.3
    )
    _, recall_defended = precision_recall(
        defended.predict(image), ground_truth, iou_threshold=0.3
    )

    return DefenseEvaluation(
        undefended_result=undefended_result,
        defended_result=defended_result,
        undefended_best_degradation=undefended_result.best_by("degradation").degradation,
        defended_best_degradation=defended_result.best_by("degradation").degradation,
        clean_recall_undefended=recall_undefended,
        clean_recall_defended=recall_defended,
    )


def ensemble_defense_evaluation_reference(
    ensemble: DetectorEnsemble,
    image: np.ndarray,
    attack_config: AttackConfig | None = None,
    vote_fraction: float = 0.5,
) -> EnsembleDefenseEvaluation:
    """The preserved pre-engine ensemble-defense loop (parity reference).

    One dense ``predict`` per member per scene variant; the engine-based
    :func:`ensemble_defense_evaluation` must stay bit-identical to this.
    """
    attack_config = attack_config if attack_config is not None else AttackConfig.fast()
    result = EnsembleAttack(ensemble, attack_config).attack(image)
    best = result.best_by("degradation")
    perturbed_image = apply_mask(image, best.mask.values)

    member_degradations = []
    for member in ensemble:
        clean = member.predict(image)
        member_degradations.append(
            objective_degradation(clean, member.predict(perturbed_image))
        )

    fused_clean = ensemble.predict_fused(image, vote_fraction=vote_fraction)
    fused_perturbed = ensemble.predict_fused(perturbed_image, vote_fraction=vote_fraction)
    fused_degradation = objective_degradation(fused_clean, fused_perturbed)

    return EnsembleDefenseEvaluation(
        attack_result=result,
        member_degradations=member_degradations,
        fused_degradation=fused_degradation,
    )
