"""Dependency-free visualisation: ASCII rendering and PPM export.

The environment has no plotting library, so qualitative results (the
counterparts of the paper's Figures 1 and 3–5) are rendered as ASCII scene
sketches and, when an image file is desired, as binary PPM files that any
image viewer can open.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.data.templates import CLASS_NAMES
from repro.detection.prediction import Prediction

#: Glyph used for each class in ASCII renderings, indexed by class id.
_CLASS_GLYPHS = "CPYVT"


def prediction_to_ascii(
    prediction: Prediction,
    image_length: int,
    image_width: int,
    columns: int = 80,
    rows: int = 18,
) -> str:
    """Render bounding boxes as an ASCII sketch of the image plane.

    Each box is drawn as a rectangle of its class glyph (C=Car,
    P=Pedestrian, Y=Cyclist, V=Van, T=Truck); overlapping boxes overwrite
    earlier ones.  A vertical ``|`` marks the image mid-line so the
    left/right protocol of the paper is visible at a glance.
    """
    if columns < 4 or rows < 4:
        raise ValueError("ascii canvas must be at least 4x4")
    canvas = np.full((rows, columns), ".", dtype="<U1")
    canvas[:, columns // 2] = "|"

    for box in prediction.valid_boxes:
        glyph = _CLASS_GLYPHS[box.cl] if 0 <= box.cl < len(_CLASS_GLYPHS) else "?"
        row_lo = int(np.floor(box.x_min / image_length * rows))
        row_hi = int(np.ceil(box.x_max / image_length * rows))
        col_lo = int(np.floor(box.y_min / image_width * columns))
        col_hi = int(np.ceil(box.y_max / image_width * columns))
        row_lo, row_hi = max(0, row_lo), min(rows, row_hi)
        col_lo, col_hi = max(0, col_lo), min(columns, col_hi)
        if row_hi > row_lo and col_hi > col_lo:
            canvas[row_lo:row_hi, col_lo:col_hi] = glyph

    legend = " ".join(
        f"{_CLASS_GLYPHS[i]}={name}" for i, name in enumerate(CLASS_NAMES)
    )
    return "\n".join("".join(line) for line in canvas) + "\n" + legend


def mask_to_ascii(
    mask: np.ndarray, columns: int = 80, rows: int = 18, levels: str = " .:-=+*#%@"
) -> str:
    """Render the per-pixel perturbation magnitude as ASCII art."""
    mask = np.asarray(mask, dtype=np.float64)
    if mask.ndim == 3:
        magnitude = np.max(np.abs(mask), axis=2)
    else:
        magnitude = np.abs(mask)
    length, width = magnitude.shape
    row_edges = np.linspace(0, length, rows + 1).astype(int)
    col_edges = np.linspace(0, width, columns + 1).astype(int)
    canvas = []
    peak = magnitude.max()
    for r in range(rows):
        line = []
        for c in range(columns):
            block = magnitude[row_edges[r] : row_edges[r + 1], col_edges[c] : col_edges[c + 1]]
            value = float(block.mean()) if block.size else 0.0
            level = 0 if peak <= 0 else int(round(value / peak * (len(levels) - 1)))
            line.append(levels[level])
        canvas.append("".join(line))
    return "\n".join(canvas)


def side_by_side(left: str, right: str, gap: int = 4) -> str:
    """Join two multi-line ASCII blocks horizontally."""
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    height = max(len(left_lines), len(right_lines))
    left_width = max((len(line) for line in left_lines), default=0)
    padded = []
    for index in range(height):
        l = left_lines[index] if index < len(left_lines) else ""
        r = right_lines[index] if index < len(right_lines) else ""
        padded.append(l.ljust(left_width + gap) + r)
    return "\n".join(padded)


def save_ppm(image: np.ndarray, path: str | Path) -> Path:
    """Write an RGB image in [0, 255] to a binary PPM (P6) file."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError("save_ppm expects an (L, W, 3) RGB image")
    data = np.clip(image, 0, 255).astype(np.uint8)
    path = Path(path)
    with open(path, "wb") as handle:
        handle.write(f"P6\n{data.shape[1]} {data.shape[0]}\n255\n".encode("ascii"))
        handle.write(data.tobytes())
    return path


def overlay_boxes(
    image: np.ndarray,
    prediction: Prediction,
    color: tuple[int, int, int] = (255, 255, 0),
    thickness: int = 1,
) -> np.ndarray:
    """Draw bounding-box outlines onto a copy of the image."""
    image = np.asarray(image, dtype=np.float64).copy()
    length, width = image.shape[:2]
    for box in prediction.valid_boxes:
        x_lo = int(np.clip(np.floor(box.x_min), 0, length - 1))
        x_hi = int(np.clip(np.ceil(box.x_max), 0, length - 1))
        y_lo = int(np.clip(np.floor(box.y_min), 0, width - 1))
        y_hi = int(np.clip(np.ceil(box.y_max), 0, width - 1))
        for offset in range(thickness):
            image[min(x_lo + offset, length - 1), y_lo : y_hi + 1] = color
            image[max(x_hi - offset, 0), y_lo : y_hi + 1] = color
            image[x_lo : x_hi + 1, min(y_lo + offset, width - 1)] = color
            image[x_lo : x_hi + 1, max(y_hi - offset, 0)] = color
    return image
