"""Aggregating the Section V-B error taxonomy over attack results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.results import AttackResult
from repro.detection.errors import ErrorType, PredictionTransition, count_error_types


@dataclass
class AttackErrorSummary:
    """Counts of each qualitative error type over a set of attack results."""

    counts: dict[ErrorType, int] = field(
        default_factory=lambda: {error: 0 for error in ErrorType}
    )
    num_solutions: int = 0

    @property
    def total_changes(self) -> int:
        """Number of transitions that are not UNCHANGED."""
        return sum(
            count
            for error, count in self.counts.items()
            if error is not ErrorType.UNCHANGED
        )

    def observed_types(self) -> list[ErrorType]:
        """Error types observed at least once (excluding UNCHANGED)."""
        return [
            error
            for error, count in self.counts.items()
            if count > 0 and error is not ErrorType.UNCHANGED
        ]

    def merge(self, other: "AttackErrorSummary") -> "AttackErrorSummary":
        """Combine two summaries."""
        merged = AttackErrorSummary()
        for error in ErrorType:
            merged.counts[error] = self.counts[error] + other.counts[error]
        merged.num_solutions = self.num_solutions + other.num_solutions
        return merged

    def as_rows(self) -> list[dict[str, object]]:
        """Rows for tabular reporting."""
        return [
            {"error_type": error.value, "count": count}
            for error, count in self.counts.items()
        ]


def summarize_transitions(
    transitions: Iterable[PredictionTransition],
) -> AttackErrorSummary:
    """Summarise a flat iterable of transitions."""
    summary = AttackErrorSummary()
    counts = count_error_types(list(transitions))
    for error, count in counts.items():
        summary.counts[error] += count
    summary.num_solutions = 1
    return summary


def summarize_attack_errors(
    results: AttackResult | Sequence[AttackResult],
) -> AttackErrorSummary:
    """Aggregate error-type counts over the Pareto fronts of attack results.

    Only front solutions carry perturbed predictions (the attack fills them
    in lazily), so the summary reflects the non-dominated perturbations —
    the same solutions the paper inspects qualitatively.
    """
    if isinstance(results, AttackResult):
        results = [results]
    summary = AttackErrorSummary()
    for result in results:
        for solution in result.pareto_front:
            counts = count_error_types(solution.transitions)
            for error, count in counts.items():
                summary.counts[error] += count
            summary.num_solutions += 1
    return summary
