"""Analysis utilities: heatmaps, error statistics, reporting, visualisation.

* :mod:`repro.analysis.heatmap` — detector feature heatmaps and the
  grey-box feature-distance objective the paper mentions ("we also can
  include feature-level distance as an additional optimization objective"),
* :mod:`repro.analysis.errors` — aggregation of the Section V-B error
  taxonomy over attack results,
* :mod:`repro.analysis.front_quality` — Pareto-front quality metrics
  (hypervolume, damage) for the bounded-error two-phase search,
* :mod:`repro.analysis.reporting` — tabular summaries for the experiment
  harness (plain-text tables, CSV export),
* :mod:`repro.analysis.visualization` — text rendering of predictions and
  masks, plus PPM image export (no plotting dependencies required).
"""

from repro.analysis.heatmap import (
    attention_heatmap,
    feature_distance_objective,
    feature_heatmap,
    heatmap_difference,
)
from repro.analysis.errors import (
    AttackErrorSummary,
    summarize_attack_errors,
    summarize_transitions,
)
from repro.analysis.front_quality import (
    compare_front_quality,
    damage,
    front_quality,
    front_reference,
)
from repro.analysis.reporting import (
    ComparisonReport,
    format_table,
    objectives_to_rows,
    write_csv,
)
from repro.analysis.sweep import budget_sweep, epsilon_sweep, mutation_window_sweep
from repro.analysis.visualization import (
    mask_to_ascii,
    overlay_boxes,
    prediction_to_ascii,
    save_ppm,
    side_by_side,
)

__all__ = [
    "attention_heatmap",
    "feature_distance_objective",
    "feature_heatmap",
    "heatmap_difference",
    "AttackErrorSummary",
    "summarize_attack_errors",
    "summarize_transitions",
    "compare_front_quality",
    "damage",
    "front_quality",
    "front_reference",
    "budget_sweep",
    "epsilon_sweep",
    "mutation_window_sweep",
    "ComparisonReport",
    "format_table",
    "objectives_to_rows",
    "write_csv",
    "mask_to_ascii",
    "overlay_boxes",
    "prediction_to_ascii",
    "save_ppm",
    "side_by_side",
]
