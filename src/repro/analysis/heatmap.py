"""Feature heatmaps and the grey-box feature-distance objective.

The paper interprets NSGA-II results "with the feature heatmap of the
detection" and notes that including a feature-level distance turns the
black-box method into a grey-box one.  For the simulated detectors the
backbone feature maps (and, for the transformer, the attention matrix) play
the role of the network's internal activations.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.masks import apply_mask
from repro.detection.prediction import Prediction
from repro.detectors.base import Detector
from repro.detectors.transformer import TransformerDetector


def feature_heatmap(detector: Detector, image: np.ndarray) -> np.ndarray:
    """Per-cell feature-activation heatmap (rows, cols), normalised to [0, 1].

    The heatmap is the L2 norm of the backbone feature vector of every cell,
    which highlights the regions the detector's features respond to.
    """
    features = detector.backbone_features(np.asarray(image, dtype=np.float64))
    magnitude = np.linalg.norm(features, axis=-1)
    span = magnitude.max() - magnitude.min()
    if span <= 0:
        return np.zeros_like(magnitude)
    return (magnitude - magnitude.min()) / span


def heatmap_difference(
    detector: Detector, image: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Absolute difference between clean and perturbed feature heatmaps."""
    clean = feature_heatmap(detector, image)
    perturbed = feature_heatmap(detector, apply_mask(image, mask))
    return np.abs(perturbed - clean)


def attention_heatmap(
    detector: TransformerDetector, image: np.ndarray, cell_index: int | None = None
) -> np.ndarray:
    """Attention received by every cell (transformer detectors only).

    When ``cell_index`` is given, returns the attention *row* of that query
    cell reshaped to the grid (where does this cell look?); otherwise the
    column-sum (how much attention does each cell attract from the whole
    image?), normalised to [0, 1].
    """
    if not isinstance(detector, TransformerDetector):
        raise TypeError("attention heatmaps require a TransformerDetector")
    image = np.asarray(image, dtype=np.float64)
    weights = detector.attention_matrix(image)
    rows, cols = detector.extractor.grid_shape(image)
    if cell_index is not None:
        if not 0 <= cell_index < weights.shape[0]:
            raise IndexError(f"cell_index {cell_index} out of range")
        heat = weights[cell_index]
    else:
        heat = weights.sum(axis=0)
    heat = heat.reshape(rows, cols)
    span = heat.max() - heat.min()
    if span <= 0:
        return np.zeros_like(heat)
    return (heat - heat.min()) / span


def feature_distance_objective(
    detector: Detector,
) -> Callable[[np.ndarray, np.ndarray, Prediction], float]:
    """Build the grey-box extra objective for ``ButterflyObjectives``.

    The returned callable measures the (negated) mean absolute change of
    the backbone feature map caused by the perturbation.  It is *minimised*
    by NSGA-II, so minimising it maximises the internal feature disruption —
    the grey-box signal the paper describes as an additional objective.
    """

    def objective(image: np.ndarray, mask: np.ndarray, _: Prediction) -> float:
        clean_features = detector.backbone_features(image)
        perturbed_features = detector.backbone_features(apply_mask(image, mask))
        return -float(np.mean(np.abs(perturbed_features - clean_features)))

    return objective
