"""Pareto-front quality metrics for the bounded-error two-phase search.

The two-phase search (``AttackConfig.fast_search``) trades *which genomes
the evolution explores* for speed while keeping the reported objective
values bit-exact.  The question it leaves open — how much front quality the
approximate search phase costs — is what this module quantifies:

* :func:`front_quality` condenses one front into scalar metrics
  (hypervolume against a fixed reference, best degradation, best distance,
  front size),
* :func:`compare_front_quality` relates an approximate-search front to an
  exact-search front under a *shared* reference point, yielding the
  hypervolume ratio and damage deltas the benchmark gates on.

All objectives follow the repository's minimisation convention: the raw
NSGA objective vectors are ``(obj_intensity, obj_degrad, -obj_dist)``.
``damage`` reports the paper-oriented maximisation views (``1 - best
obj_degrad`` is the strongest confidence collapse, ``max obj_dist`` the
largest box displacement).
"""

from __future__ import annotations

import numpy as np

from repro.nsga.front import hypervolume, nadir_reference


def damage(objectives: np.ndarray) -> dict[str, float]:
    """Paper-oriented damage summary of a set of objective vectors.

    ``objectives`` is an (n, 3+) array of minimised NSGA vectors.  Returns
    the best (lowest) ``obj_degrad``, the best (highest) ``obj_dist`` and
    the lowest intensity — the per-objective champions of Figure 2.
    """
    objectives = np.asarray(objectives, dtype=np.float64)
    if objectives.ndim != 2 or objectives.shape[1] < 3:
        raise ValueError(
            f"expected (n, >=3) objective vectors, got {objectives.shape}"
        )
    if objectives.shape[0] == 0:
        return {"best_degradation": 1.0, "best_distance": 0.0, "best_intensity": 0.0}
    return {
        "best_degradation": float(objectives[:, 1].min()),
        "best_distance": float(-objectives[:, 2].min()),
        "best_intensity": float(objectives[:, 0].min()),
    }


def front_reference(*fronts: np.ndarray, margin: float = 1e-9) -> np.ndarray:
    """A shared hypervolume reference dominating every given front.

    The componentwise worst point across all fronts plus a small margin so
    boundary points still contribute volume; comparing hypervolumes is
    only meaningful under one common reference.
    """
    stacked = [np.asarray(front, dtype=np.float64) for front in fronts if len(front)]
    if not stacked:
        raise ValueError("front_reference needs at least one non-empty front")
    return nadir_reference(np.concatenate(stacked, axis=0), margin=margin)


def front_quality(
    objectives: np.ndarray, reference: np.ndarray | None = None
) -> dict[str, float]:
    """Scalar quality metrics of one Pareto front."""
    objectives = np.asarray(objectives, dtype=np.float64)
    metrics = damage(objectives)
    metrics["front_size"] = int(objectives.shape[0])
    metrics["hypervolume"] = hypervolume(objectives, reference)
    return metrics


def compare_front_quality(
    approx_front: np.ndarray, exact_front: np.ndarray
) -> dict[str, object]:
    """Approximate-search vs exact-search front quality, shared reference.

    Both inputs are (n, d) arrays of *exactly scored* objective vectors
    (the two-phase search re-scores its front bit-exactly, so the
    comparison measures search quality, not scoring error).  Returns the
    per-front metrics plus ``hypervolume_ratio`` (approx / exact, 1.0 when
    both are empty or exact has zero volume while approx matches) and the
    damage deltas (approx minus exact; negative ``degradation_delta``
    means the approximate search found a *stronger* attack).
    """
    approx_front = np.asarray(approx_front, dtype=np.float64)
    exact_front = np.asarray(exact_front, dtype=np.float64)
    reference = front_reference(approx_front, exact_front)
    approx = front_quality(approx_front, reference)
    exact = front_quality(exact_front, reference)
    if exact["hypervolume"] > 0.0:
        ratio = approx["hypervolume"] / exact["hypervolume"]
    else:
        ratio = 1.0 if approx["hypervolume"] == 0.0 else float("inf")
    return {
        "reference": [float(value) for value in reference],
        "approx": approx,
        "exact": exact,
        "hypervolume_ratio": float(ratio),
        "degradation_delta": approx["best_degradation"] - exact["best_degradation"],
        "distance_delta": approx["best_distance"] - exact["best_distance"],
    }
