"""Parameter sweeps over the attack's hyper-parameters.

The attack has a handful of knobs that the paper fixes (Table II) or leaves
implicit: the Algorithm 2 buffer ``ϵ`` around bounding boxes, the mutation
window size ``w`` and the NSGA-II budget.  These helpers run the attack
across a grid of one parameter and collect the front statistics, providing
the data for ablation studies.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.core.attack import ButterflyAttack
from repro.core.config import AttackConfig
from repro.core.results import AttackResult
from repro.detectors.base import Detector
from repro.nsga.algorithm import NSGAConfig
from repro.nsga.front import hypervolume_2d
from repro.nsga.mutation import MutationConfig


def _front_statistics(result: AttackResult) -> dict[str, float]:
    """Summary statistics of one attack result's Pareto front."""
    points = result.objectives_array(front_only=True)
    if points.size == 0:
        return {
            "front_size": 0.0,
            "best_degradation": 1.0,
            "mean_intensity": 0.0,
            "best_distance": 0.0,
            "hypervolume": 0.0,
        }
    return {
        "front_size": float(points.shape[0]),
        "best_degradation": float(points[:, 1].min()),
        "mean_intensity": float(points[:, 0].mean()),
        "best_distance": float(points[:, 2].max()),
        "hypervolume": hypervolume_2d(points[:, :2], reference=(1.0, 1.0)),
    }


def epsilon_sweep(
    detector: Detector,
    image: np.ndarray,
    epsilons: Sequence[float],
    base_config: AttackConfig | None = None,
) -> list[dict[str, float]]:
    """Sweep the Algorithm 2 buffer ``ϵ`` and collect front statistics.

    Larger buffers penalise perturbations near the objects more aggressively,
    trading attack strength for "unrelatedness".
    """
    base_config = base_config if base_config is not None else AttackConfig.fast()
    rows: list[dict[str, float]] = []
    for epsilon in epsilons:
        config = replace(base_config, epsilon=float(epsilon))
        result = ButterflyAttack(detector, config).attack(image)
        rows.append({"epsilon": float(epsilon), **_front_statistics(result)})
    return rows


def mutation_window_sweep(
    detector: Detector,
    image: np.ndarray,
    window_fractions: Sequence[float],
    base_config: AttackConfig | None = None,
) -> list[dict[str, float]]:
    """Sweep the mutation window size ``w`` (Table II fixes it at 1 %)."""
    base_config = base_config if base_config is not None else AttackConfig.fast()
    rows: list[dict[str, float]] = []
    for fraction in window_fractions:
        mutation = MutationConfig(
            probability=base_config.nsga.mutation.probability,
            window_fraction=float(fraction),
            max_value=base_config.nsga.mutation.max_value,
            operators=base_config.nsga.mutation.operators,
        )
        nsga = NSGAConfig(
            num_iterations=base_config.nsga.num_iterations,
            population_size=base_config.nsga.population_size,
            crossover_probability=base_config.nsga.crossover_probability,
            mutation=mutation,
            initialization=base_config.nsga.initialization,
            seed=base_config.nsga.seed,
        )
        config = replace(base_config, nsga=nsga)
        result = ButterflyAttack(detector, config).attack(image)
        rows.append({"window_fraction": float(fraction), **_front_statistics(result)})
    return rows


def budget_sweep(
    detector: Detector,
    image: np.ndarray,
    budgets: Sequence[tuple[int, int]],
    base_config: AttackConfig | None = None,
) -> list[dict[str, float]]:
    """Sweep the (iterations, population) budget of the genetic search."""
    base_config = base_config if base_config is not None else AttackConfig.fast()
    rows: list[dict[str, float]] = []
    for iterations, population in budgets:
        nsga = NSGAConfig(
            num_iterations=int(iterations),
            population_size=int(population),
            crossover_probability=base_config.nsga.crossover_probability,
            mutation=base_config.nsga.mutation,
            initialization=base_config.nsga.initialization,
            seed=base_config.nsga.seed,
        )
        config = replace(base_config, nsga=nsga)
        result = ButterflyAttack(detector, config).attack(image)
        rows.append(
            {
                "iterations": float(iterations),
                "population": float(population),
                "evaluations": float(result.num_evaluations),
                **_front_statistics(result),
            }
        )
    return rows
