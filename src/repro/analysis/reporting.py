"""Tabular reporting helpers used by the experiment harness and benchmarks."""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.results import AttackResult


def format_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Render rows of dictionaries as a fixed-width plain-text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    rendered = [[cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    separator = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(value.ljust(w) for value, w in zip(line, widths))
        for line in rendered
    )
    return "\n".join([header, separator, body])


def write_csv(
    rows: Sequence[Mapping[str, object]],
    path: str | Path,
    columns: Sequence[str] | None = None,
) -> None:
    """Write rows of dictionaries to a CSV file."""
    if not rows:
        Path(path).write_text("")
        return
    if columns is None:
        columns = list(rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns))
        writer.writeheader()
        for row in rows:
            writer.writerow({column: row.get(column, "") for column in columns})


def objectives_to_rows(
    result: AttackResult, label: str = "", front_only: bool = True
) -> list[dict[str, object]]:
    """Flatten an attack result's solutions into report rows."""
    solutions = result.pareto_front if front_only else result.solutions
    rows: list[dict[str, object]] = []
    for index, solution in enumerate(solutions):
        rows.append(
            {
                "label": label or result.detector_name,
                "solution": index,
                "intensity": solution.intensity,
                "degradation": solution.degradation,
                "distance": solution.distance,
                "rank": solution.rank,
            }
        )
    return rows


@dataclass
class ComparisonReport:
    """Aggregated comparison between detector architectures (Figure 2 data).

    Rows are accumulated per architecture label; :meth:`summary_rows`
    reduces them to the statistics the paper's comparison relies on: the
    best (lowest) degradation reachable, the intensity needed for it and the
    distance achieved.
    """

    rows: list[dict[str, object]] = field(default_factory=list)

    def add_result(self, label: str, result: AttackResult) -> None:
        """Add all front solutions of one attack result."""
        self.rows.extend(objectives_to_rows(result, label=label))

    def labels(self) -> list[str]:
        return sorted({str(row["label"]) for row in self.rows})

    def rows_for(self, label: str) -> list[dict[str, object]]:
        return [row for row in self.rows if row["label"] == label]

    def summary_rows(self) -> list[dict[str, object]]:
        """One summary row per label."""
        summary: list[dict[str, object]] = []
        for label in self.labels():
            rows = self.rows_for(label)
            degradations = np.array([float(row["degradation"]) for row in rows])
            intensities = np.array([float(row["intensity"]) for row in rows])
            distances = np.array([float(row["distance"]) for row in rows])
            summary.append(
                {
                    "label": label,
                    "solutions": len(rows),
                    "best_degradation": float(degradations.min()),
                    "mean_degradation": float(degradations.mean()),
                    "mean_intensity": float(intensities.mean()),
                    "best_distance": float(distances.max()),
                    "mean_distance": float(distances.mean()),
                }
            )
        return summary

    def to_text(self) -> str:
        """Plain-text rendering of the summary."""
        return format_table(self.summary_rows())

    def dominates_comparison(
        self, first_label: str, second_label: str
    ) -> dict[str, float]:
        """Compare two architectures in the (intensity, degradation) plane.

        Returns the fraction of ``first_label`` front points that are
        dominated by at least one ``second_label`` point (and vice versa)
        considering the two minimised objectives.  The paper's Figure 2
        conclusion ("for DETR, with a smaller amount of perturbation, one
        can generate larger performance degradation") corresponds to the
        transformer dominating the single-stage detector more often than
        the converse.
        """
        first = np.array(
            [
                (float(row["intensity"]), float(row["degradation"]))
                for row in self.rows_for(first_label)
            ]
        )
        second = np.array(
            [
                (float(row["intensity"]), float(row["degradation"]))
                for row in self.rows_for(second_label)
            ]
        )
        if first.size == 0 or second.size == 0:
            return {"first_dominated": 0.0, "second_dominated": 0.0}

        def dominated_fraction(points: np.ndarray, by: np.ndarray) -> float:
            dominated = 0
            for point in points:
                better_or_equal = np.all(by <= point + 1e-12, axis=1)
                strictly_better = np.any(by < point - 1e-12, axis=1)
                if np.any(better_or_equal & strictly_better):
                    dominated += 1
            return dominated / len(points)

        return {
            "first_dominated": dominated_fraction(first, second),
            "second_dominated": dominated_fraction(second, first),
        }
