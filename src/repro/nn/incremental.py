"""Dirty-region geometry and windowed filter kernels.

The incremental-inference subsystem recomputes detector activations only
inside the *dirty region* of a perturbed image — the nonzero bounding box
of the filter mask, dilated by the receptive field of each stage — and
splices the result into cached clean-scene activations.  This module holds
the two ingredients that make the splice bit-identical to a full forward
pass:

* **bbox geometry** — half-open pixel/cell bounding boxes ``(r0, r1, c0,
  c1)``, dilation by a filter radius, pixel→cell conversion, unions;
* **windowed kernels** — variants of :func:`~repro.nn.conv.box_filter`,
  the Sobel gradient magnitude and the block pools that compute only an
  output window, with explicit halo handling: the input window is gathered
  with symmetric-reflection indices so boundary behaviour matches
  ``np.pad(..., mode="symmetric")``, and the shifted-sum accumulation
  visits the kernel taps in exactly the same order as
  :func:`repro.nn.conv._convolve_same_symm`.  Per-element floating-point
  operations are therefore identical to the full-image filters — the
  property the ``predict_delta`` parity suite enforces.
"""

from __future__ import annotations

import numpy as np

#: A half-open bounding box ``(row_lo, row_hi, col_lo, col_hi)``.
BBox = tuple[int, int, int, int]

#: The empty bounding box (no dirty pixels).
EMPTY_BBOX: BBox = (0, 0, 0, 0)


def bbox_is_empty(bbox: BBox | None) -> bool:
    """True when the box covers no pixels (``None`` counts as unknown, not empty)."""
    if bbox is None:
        return False
    r0, r1, c0, c1 = bbox
    return r1 <= r0 or c1 <= c0


def bbox_area(bbox: BBox | None) -> int:
    """Number of pixels covered by the box (0 for empty boxes)."""
    if bbox is None or bbox_is_empty(bbox):
        return 0
    r0, r1, c0, c1 = bbox
    return (r1 - r0) * (c1 - c0)


def bbox_union(first: BBox | None, second: BBox | None) -> BBox | None:
    """Smallest box containing both; ``None`` (unknown extent) is absorbing."""
    if first is None or second is None:
        return None
    if bbox_is_empty(first):
        return second
    if bbox_is_empty(second):
        return first
    return (
        min(first[0], second[0]),
        max(first[1], second[1]),
        min(first[2], second[2]),
        max(first[3], second[3]),
    )


def bbox_intersection(first: BBox | None, second: BBox | None) -> BBox | None:
    """Largest box contained in both; ``None`` (unknown extent) is neutral.

    Used to tighten dirty-region bounds: intersecting a parent's bound with
    the region an operator could have copied from keeps the bound a valid
    superset of the child's nonzero pixels while shrinking the later exact
    scan.  Returns :data:`EMPTY_BBOX` for disjoint boxes.
    """
    if first is None:
        return second
    if second is None:
        return first
    if bbox_is_empty(first) or bbox_is_empty(second):
        return EMPTY_BBOX
    r0, r1 = max(first[0], second[0]), min(first[1], second[1])
    c0, c1 = max(first[2], second[2]), min(first[3], second[3])
    if r1 <= r0 or c1 <= c0:
        return EMPTY_BBOX
    return (r0, r1, c0, c1)


def bbox_area_fraction(bbox: BBox | None, shape: tuple[int, int]) -> float:
    """Fraction of a ``shape``-sized plane covered by the box (1.0 for ``None``)."""
    if bbox is None:
        return 1.0
    total = shape[0] * shape[1]
    if total <= 0:
        return 1.0
    return bbox_area(bbox) / float(total)


def dilate_bbox(bbox: BBox, radius: int, shape: tuple[int, int]) -> BBox:
    """Grow a box by ``radius`` on every side, clipped to ``shape``."""
    if bbox_is_empty(bbox):
        return EMPTY_BBOX
    r0, r1, c0, c1 = bbox
    return (
        max(0, r0 - radius),
        min(shape[0], r1 + radius),
        max(0, c0 - radius),
        min(shape[1], c1 + radius),
    )


def pixel_bbox_to_cell_bbox(bbox: BBox, cell: int, grid_shape: tuple[int, int]) -> BBox:
    """Cells (half-open) overlapping a pixel box, clipped to the cell grid.

    Pixels beyond the trimmed grid (trailing rows/columns that do not fill a
    whole cell) belong to no cell, so a box entirely inside that margin maps
    to the empty box.
    """
    if bbox_is_empty(bbox):
        return EMPTY_BBOX
    r0, r1, c0, c1 = bbox
    cr0 = min(r0 // cell, grid_shape[0])
    cr1 = min(-(-r1 // cell), grid_shape[0])
    cc0 = min(c0 // cell, grid_shape[1])
    cc1 = min(-(-c1 // cell), grid_shape[1])
    if cr1 <= cr0 or cc1 <= cc0:
        return EMPTY_BBOX
    return (cr0, cr1, cc0, cc1)


def mask_nonzero_bbox(mask: np.ndarray, within: BBox | None = None) -> BBox:
    """Exact bounding box of the pixels with a nonzero value in any channel.

    ``within`` restricts the scan to a window known to contain every
    nonzero pixel (e.g. the O(1) dirty-region bound propagated by the
    NSGA-II operators); the result is identical to the full scan but costs
    only O(window).  Returns :data:`EMPTY_BBOX` for all-zero masks.
    """
    mask = np.asarray(mask)
    off_r = off_c = 0
    if within is not None and not bbox_is_empty(within):
        r0, r1, c0, c1 = within
        mask = mask[r0:r1, c0:c1]
        off_r, off_c = r0, c0
    elif within is not None:
        return EMPTY_BBOX
    nonzero = mask != 0
    if nonzero.ndim == 3:
        nonzero = nonzero.any(axis=2)
    rows = np.flatnonzero(nonzero.any(axis=1))
    if rows.size == 0:
        return EMPTY_BBOX
    cols = np.flatnonzero(nonzero.any(axis=0))
    return (
        off_r + int(rows[0]),
        off_r + int(rows[-1]) + 1,
        off_c + int(cols[0]),
        off_c + int(cols[-1]) + 1,
    )


def bbox_symmetric_difference(first: BBox | None, second: BBox | None) -> BBox | None:
    """Hull of the region covered by exactly one of the two boxes.

    The true symmetric difference of two rectangles is not a rectangle in
    general; this returns a rectangular **superset** of it — the tightest
    one expressible with the information at hand — which is what a dirty
    bound needs (a superset never changes results, only the recompute
    window).  Equal boxes give :data:`EMPTY_BBOX`; an empty box gives the
    other box; boxes sharing a row range (or a column range) confine the
    difference to the complementary axis; anything else falls back to the
    union hull.  ``None`` (unknown extent) is absorbing.
    """
    if first is None or second is None:
        return None
    if bbox_is_empty(first):
        return EMPTY_BBOX if bbox_is_empty(second) else second
    if bbox_is_empty(second):
        return first
    if first == second:
        return EMPTY_BBOX
    fr0, fr1, fc0, fc1 = first
    sr0, sr1, sc0, sc1 = second
    if (fr0, fr1) == (sr0, sr1):
        c0 = min(fc1, sc1) if fc0 == sc0 else min(fc0, sc0)
        c1 = max(fc0, sc0) if fc1 == sc1 else max(fc1, sc1)
        return (fr0, fr1, c0, c1)
    if (fc0, fc1) == (sc0, sc1):
        r0 = min(fr1, sr1) if fr0 == sr0 else min(fr0, sr0)
        r1 = max(fr0, sr0) if fr1 == sr1 else max(fr1, sr1)
        return (r0, r1, fc0, fc1)
    return bbox_union(first, second)


def masks_differ_bbox(
    first: np.ndarray, second: np.ndarray, within: BBox | None = None
) -> BBox:
    """Exact bounding box of the pixels where two masks differ in any channel.

    The relative dirty region of a child mask against an ancestor: splicing
    only this window (dilated by the receptive field) into the ancestor's
    activation grids reproduces the child's grids bit for bit.  ``within``
    restricts the scan to a window known to contain every differing pixel
    (e.g. the intersection of the lineage diff bound with the union of both
    supports); the result is identical to the full scan but costs only
    O(window).  Returns :data:`EMPTY_BBOX` for identical masks.
    """
    first = np.asarray(first)
    second = np.asarray(second)
    if first.shape != second.shape:
        raise ValueError(
            f"mask shapes differ: {first.shape} vs {second.shape}"
        )
    off_r = off_c = 0
    if within is not None and not bbox_is_empty(within):
        r0, r1, c0, c1 = within
        first = first[r0:r1, c0:c1]
        second = second[r0:r1, c0:c1]
        off_r, off_c = r0, c0
    elif within is not None:
        return EMPTY_BBOX
    differ = first != second
    if differ.ndim == 3:
        differ = differ.any(axis=2)
    rows = np.flatnonzero(differ.any(axis=1))
    if rows.size == 0:
        return EMPTY_BBOX
    cols = np.flatnonzero(differ.any(axis=0))
    return (
        off_r + int(rows[0]),
        off_r + int(rows[-1]) + 1,
        off_c + int(cols[0]),
        off_c + int(cols[-1]) + 1,
    )


def frames_differ_bbox(
    previous: np.ndarray, current: np.ndarray, within: BBox | None = None
) -> BBox:
    """Exact bounding box of the pixels where two video frames differ.

    The inter-frame dirty region of the streaming workload: splicing only
    this window (dilated by the receptive field) into the previous frame's
    clean activation grids reproduces the current frame's grids bit for
    bit — the frame delta is a dirty region like any mask.  ``within``
    restricts the scan to a window known to contain every changed pixel
    (the moving-object union bound derived from consecutive scene specs);
    the result is identical to the full scan but costs only O(window).
    Returns :data:`EMPTY_BBOX` for identical frames.
    """
    return masks_differ_bbox(previous, current, within=within)


def reflect_indices(start: int, stop: int, size: int) -> np.ndarray:
    """Indices ``start..stop`` mapped into ``[0, size)`` by symmetric reflection.

    Reproduces ``np.pad(a, pad, mode="symmetric")`` for arbitrary overshoot
    (including windows wider than the array), so gathering ``a[indices]``
    equals slicing the symmetrically padded array.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    indices = np.arange(start, stop)
    period = 2 * size
    indices = np.mod(indices, period)
    return np.where(indices >= size, period - 1 - indices, indices)


def gather_window(array: np.ndarray, row_range: tuple[int, int], col_range: tuple[int, int]) -> np.ndarray:
    """Window of ``array`` over possibly out-of-bounds row/col ranges.

    Out-of-bounds positions are filled by symmetric reflection, matching the
    boundary handling of the full-image filters.  Works on 2-D ``(H, W)``
    and 3-D ``(H, W, C)`` arrays.  Fully in-bounds windows take a plain
    slicing fast path (a view — no copy); the elements are identical either
    way.
    """
    r0, r1 = row_range
    c0, c1 = col_range
    if 0 <= r0 and r1 <= array.shape[0] and 0 <= c0 and c1 <= array.shape[1]:
        return array[r0:r1, c0:c1]
    rows = reflect_indices(r0, r1, array.shape[0])
    cols = reflect_indices(c0, c1, array.shape[1])
    return array[np.ix_(rows, cols)]


def _convolve_valid_prepadded(stack: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Valid-mode convolution of a window that already includes its halo.

    ``stack`` has ``kernel//2`` halo elements on every side of the last two
    axes; the output drops the halo.  The accumulation visits the flipped
    kernel taps in the same (row, column) order and with the same
    zero-weight skipping as :func:`repro.nn.conv._convolve_same_symm`, so a
    gathered window produces bit-identical values to slicing the
    full-image result.
    """
    kernel = np.asarray(kernel, dtype=np.float64)
    kh, kw = kernel.shape
    if kh % 2 == 0 or kw % 2 == 0:
        raise ValueError("kernel side lengths must be odd")
    height = stack.shape[-2] - (kh - 1)
    width = stack.shape[-1] - (kw - 1)
    if height <= 0 or width <= 0:
        raise ValueError("window smaller than the kernel halo")
    flipped = kernel[::-1, ::-1]
    out = np.zeros(stack.shape[:-2] + (height, width), dtype=np.float64)
    for i in range(kh):
        for j in range(kw):
            weight = flipped[i, j]
            if weight == 0.0:
                continue
            out += weight * stack[..., i : i + height, j : j + width]
    return out


def convolve_window_symm(array: np.ndarray, kernel: np.ndarray, bbox: BBox) -> np.ndarray:
    """The ``bbox`` window of ``_convolve_same_symm(array, kernel)``.

    ``array`` is 2-D; the halo needed by the kernel is gathered around the
    window with symmetric reflection at the array borders.
    """
    kernel = np.asarray(kernel, dtype=np.float64)
    r0, r1, c0, c1 = bbox
    pad_r, pad_c = kernel.shape[0] // 2, kernel.shape[1] // 2
    window = gather_window(array, (r0 - pad_r, r1 + pad_r), (c0 - pad_c, c1 + pad_c))
    return _convolve_valid_prepadded(window, kernel)


def box_filter_window(array: np.ndarray, size: int, bbox: BBox) -> np.ndarray:
    """The ``bbox`` window of the odd-sized :func:`repro.nn.conv.box_filter`.

    Only odd sizes are supported — they are the receptive-field path used
    by the detectors' smoothing stacks; even sizes route through scipy's
    ``convolve2d`` alignment and are recomputed whole-grid instead (the
    grids are tiny).
    """
    if size <= 0:
        raise ValueError("size must be positive")
    if size % 2 == 0:
        raise ValueError("box_filter_window supports odd sizes only")
    kernel = np.ones((size, size), dtype=np.float64) / (size * size)
    return convolve_window_symm(array, kernel, bbox)


def box_filter_window_channels(features: np.ndarray, size: int, bbox: BBox) -> np.ndarray:
    """The ``bbox`` window of per-channel odd-sized box filtering of a grid.

    Equivalent to stacking ``box_filter(features[:, :, d], size)[bbox]``
    over the channels of an ``(H, W, C)`` feature grid — the single-stage
    detector's local-smoothing stage — computed on the gathered window only.
    The channel axis rides through :func:`_convolve_valid_prepadded` as a
    leading axis, so the accumulation per channel is identical to the 2-D
    filter and the result is bit-exact against the full-grid slice.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    if size % 2 == 0:
        raise ValueError("box_filter_window_channels supports odd sizes only")
    kernel = np.ones((size, size), dtype=np.float64) / (size * size)
    r0, r1, c0, c1 = bbox
    pad = size // 2
    window = gather_window(features, (r0 - pad, r1 + pad), (c0 - pad, c1 + pad))
    leading = np.moveaxis(window, -1, -3)
    return np.moveaxis(_convolve_valid_prepadded(leading, kernel), -3, -1)


#: Sobel kernels, re-exported here to keep the windowed path self-contained.
_SOBEL_ROW = np.array([[-1, -2, -1], [0, 0, 0], [1, 2, 1]], dtype=np.float64)


def gradient_magnitude_window(window_with_halo: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude of a window carrying a 1-pixel halo.

    ``window_with_halo`` is an ``(h + 2, w + 2, C)`` pixel window whose halo
    was gathered with :func:`gather_window`; the result is the ``(h, w)``
    channel-summed gradient magnitude, bit-identical to the corresponding
    window of :func:`repro.nn.conv.gradient_magnitude` on the full image.
    """
    leading = np.moveaxis(window_with_halo, -1, -3)
    grad_row = _convolve_valid_prepadded(leading, _SOBEL_ROW).sum(axis=-3)
    grad_col = _convolve_valid_prepadded(leading, _SOBEL_ROW.T).sum(axis=-3)
    return np.hypot(grad_row, grad_col)
