"""Scaled dot-product and multi-head self-attention (forward pass only)."""

from __future__ import annotations

import numpy as np

from repro.nn.linear import Linear
from repro.nn.ops import layer_norm, softmax


def scaled_dot_product_attention(
    query: np.ndarray,
    key: np.ndarray,
    value: np.ndarray,
    temperature: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Attention(Q, K, V) = softmax(QK^T / sqrt(d)) V.

    Returns the attended values and the attention weight matrix.  The
    attention weights are what connect "two arbitrary regions in an image"
    (the paper's conjectured source of transformer susceptibility), so they
    are exposed for analysis and heatmap generation.

    Inputs may carry arbitrary leading batch axes (``(..., tokens, dim)``);
    the attention is computed per batch element, bit-identical to calling
    the function on each element separately.
    """
    query = np.asarray(query, dtype=np.float64)
    key = np.asarray(key, dtype=np.float64)
    value = np.asarray(value, dtype=np.float64)
    if query.shape[-1] != key.shape[-1]:
        raise ValueError("query and key feature dimensions differ")
    if key.shape[-2] != value.shape[-2]:
        raise ValueError("key and value token counts differ")
    scale = temperature if temperature is not None else np.sqrt(query.shape[-1])
    scores = query @ np.swapaxes(key, -1, -2) / scale
    weights = softmax(scores, axis=-1)
    return weights @ value, weights


class MultiHeadSelfAttention:
    """Multi-head self-attention over a set of tokens.

    Weights are random (seeded) projections; the simulated transformer
    detector does not learn them — the *structure* (global softmax mixing)
    is what matters for the butterfly-effect experiments.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int = 2,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if dim <= 0 or num_heads <= 0:
            raise ValueError("dim and num_heads must be positive")
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        if rng is None or isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng if rng is not None else 0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query_proj = Linear(dim, dim, rng)
        self.key_proj = Linear(dim, dim, rng)
        self.value_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)
        self._last_attention: np.ndarray | None = None

    @property
    def last_attention(self) -> np.ndarray | None:
        """Attention weights from the most recent *single-image* forward pass.

        Shape (num_heads, tokens, tokens); useful for heatmap analysis.
        Batched passes skip the recording — stacking a (B, heads, tokens,
        tokens) copy per layer would dominate the batch fast path's memory
        traffic for a buffer nothing reads.
        """
        return self._last_attention

    def __call__(self, tokens: np.ndarray) -> np.ndarray:
        """Apply self-attention with a residual connection and layer norm.

        Accepts ``(tokens, dim)`` or batched ``(..., tokens, dim)`` input;
        batched results match the per-element computation bit-for-bit.
        """
        tokens = np.asarray(tokens, dtype=np.float64)
        if tokens.ndim < 2 or tokens.shape[-1] != self.dim:
            raise ValueError(
                f"expected tokens of shape (..., n, {self.dim}), got {tokens.shape}"
            )
        head_shape = tokens.shape[:-1] + (self.num_heads, self.head_dim)
        query = self.query_proj(tokens).reshape(head_shape)
        key = self.key_proj(tokens).reshape(head_shape)
        value = self.value_proj(tokens).reshape(head_shape)

        record_attention = tokens.ndim == 2
        head_outputs = []
        attentions = []
        for head in range(self.num_heads):
            attended, weights = scaled_dot_product_attention(
                query[..., head, :], key[..., head, :], value[..., head, :]
            )
            head_outputs.append(attended)
            if record_attention:
                attentions.append(weights)
        if record_attention:
            self._last_attention = np.stack(attentions, axis=-3)
        concatenated = np.concatenate(head_outputs, axis=-1)
        output = self.out_proj(concatenated)
        return layer_norm(tokens + output, axis=-1)

    def forward_rows(
        self,
        tokens: np.ndarray,
        rows: np.ndarray | None = None,
        dtype: np.dtype | str = np.float64,
    ) -> np.ndarray:
        """Self-attention restricted to a subset of query rows.

        Computes the layer output only for the tokens indexed by ``rows``
        (all tokens when ``rows`` is None), while keys and values still span
        the full token set — the approximation is in *which rows are
        refreshed*, never in what each refreshed row attends to.  This is
        the windowed-attention fidelity primitive: the caller keeps clean
        cached outputs for rows outside the window.

        With ``rows=None`` and float64 the arithmetic mirrors
        :meth:`__call__` (same projections, scale, softmax and residual
        norm); row subsets and float32 are approximate — BLAS blocking
        means a row-sliced matmul need not be bit-identical to a slice of
        the full product.  ``_last_attention`` is never touched.
        """
        dtype = np.dtype(dtype)
        tokens = np.asarray(tokens, dtype=dtype)
        if tokens.ndim != 2 or tokens.shape[-1] != self.dim:
            raise ValueError(
                f"expected tokens of shape (n, {self.dim}), got {tokens.shape}"
            )
        row_tokens = tokens if rows is None else tokens[rows]
        head_shape = (-1, self.num_heads, self.head_dim)
        query = self.query_proj.at(row_tokens, dtype).reshape(head_shape)
        key = self.key_proj.at(tokens, dtype).reshape(head_shape)
        value = self.value_proj.at(tokens, dtype).reshape(head_shape)
        # Python-float scale: an np.float64 scalar would silently promote
        # float32 activations back to float64.
        scale = float(np.sqrt(self.head_dim))
        head_outputs = []
        for head in range(self.num_heads):
            scores = query[:, head, :] @ key[:, head, :].T / scale
            weights = softmax(scores, axis=-1)
            head_outputs.append(weights @ value[:, head, :])
        concatenated = np.concatenate(head_outputs, axis=-1)
        output = self.out_proj.at(concatenated, dtype)
        return layer_norm(row_tokens + output, axis=-1)

    def forward_rows_batch(
        self,
        tokens: np.ndarray,
        rows: np.ndarray,
        dtype: np.dtype | str = np.float64,
    ) -> np.ndarray:
        """Batched :meth:`forward_rows` with per-element query row subsets.

        ``tokens`` is ``(B, n, dim)`` and ``rows`` an integer ``(B, R)``
        array selecting each element's refreshed rows (equal count per
        element — the caller groups by window shape).  Returns ``(B, R,
        dim)``.  Keys/values span each element's full token set; the
        arithmetic mirrors :meth:`forward_rows` with a batch axis carried
        through every operation.
        """
        dtype = np.dtype(dtype)
        tokens = np.asarray(tokens, dtype=dtype)
        if tokens.ndim != 3 or tokens.shape[-1] != self.dim:
            raise ValueError(
                f"expected tokens of shape (B, n, {self.dim}), got {tokens.shape}"
            )
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[0] != tokens.shape[0]:
            raise ValueError(
                f"expected rows of shape ({tokens.shape[0]}, R), got {rows.shape}"
            )
        batch = np.arange(tokens.shape[0])[:, None]
        row_tokens = tokens[batch, rows]
        head_shape_q = row_tokens.shape[:-1] + (self.num_heads, self.head_dim)
        head_shape_kv = tokens.shape[:-1] + (self.num_heads, self.head_dim)
        query = self.query_proj.at(row_tokens, dtype).reshape(head_shape_q)
        key = self.key_proj.at(tokens, dtype).reshape(head_shape_kv)
        value = self.value_proj.at(tokens, dtype).reshape(head_shape_kv)
        scale = float(np.sqrt(self.head_dim))
        head_outputs = []
        for head in range(self.num_heads):
            scores = (
                query[..., head, :] @ np.swapaxes(key[..., head, :], -1, -2) / scale
            )
            weights = softmax(scores, axis=-1)
            head_outputs.append(weights @ value[..., head, :])
        concatenated = np.concatenate(head_outputs, axis=-1)
        output = self.out_proj.at(concatenated, dtype)
        return layer_norm(row_tokens + output, axis=-1)
