"""Scaled dot-product and multi-head self-attention (forward pass only)."""

from __future__ import annotations

import numpy as np

from repro.nn.linear import Linear
from repro.nn.ops import layer_norm, softmax


def scaled_dot_product_attention(
    query: np.ndarray,
    key: np.ndarray,
    value: np.ndarray,
    temperature: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Attention(Q, K, V) = softmax(QK^T / sqrt(d)) V.

    Returns the attended values and the attention weight matrix.  The
    attention weights are what connect "two arbitrary regions in an image"
    (the paper's conjectured source of transformer susceptibility), so they
    are exposed for analysis and heatmap generation.

    Inputs may carry arbitrary leading batch axes (``(..., tokens, dim)``);
    the attention is computed per batch element, bit-identical to calling
    the function on each element separately.
    """
    query = np.asarray(query, dtype=np.float64)
    key = np.asarray(key, dtype=np.float64)
    value = np.asarray(value, dtype=np.float64)
    if query.shape[-1] != key.shape[-1]:
        raise ValueError("query and key feature dimensions differ")
    if key.shape[-2] != value.shape[-2]:
        raise ValueError("key and value token counts differ")
    scale = temperature if temperature is not None else np.sqrt(query.shape[-1])
    scores = query @ np.swapaxes(key, -1, -2) / scale
    weights = softmax(scores, axis=-1)
    return weights @ value, weights


class MultiHeadSelfAttention:
    """Multi-head self-attention over a set of tokens.

    Weights are random (seeded) projections; the simulated transformer
    detector does not learn them — the *structure* (global softmax mixing)
    is what matters for the butterfly-effect experiments.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int = 2,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if dim <= 0 or num_heads <= 0:
            raise ValueError("dim and num_heads must be positive")
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        if rng is None or isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng if rng is not None else 0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query_proj = Linear(dim, dim, rng)
        self.key_proj = Linear(dim, dim, rng)
        self.value_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)
        self._last_attention: np.ndarray | None = None

    @property
    def last_attention(self) -> np.ndarray | None:
        """Attention weights from the most recent *single-image* forward pass.

        Shape (num_heads, tokens, tokens); useful for heatmap analysis.
        Batched passes skip the recording — stacking a (B, heads, tokens,
        tokens) copy per layer would dominate the batch fast path's memory
        traffic for a buffer nothing reads.
        """
        return self._last_attention

    def __call__(self, tokens: np.ndarray) -> np.ndarray:
        """Apply self-attention with a residual connection and layer norm.

        Accepts ``(tokens, dim)`` or batched ``(..., tokens, dim)`` input;
        batched results match the per-element computation bit-for-bit.
        """
        tokens = np.asarray(tokens, dtype=np.float64)
        if tokens.ndim < 2 or tokens.shape[-1] != self.dim:
            raise ValueError(
                f"expected tokens of shape (..., n, {self.dim}), got {tokens.shape}"
            )
        head_shape = tokens.shape[:-1] + (self.num_heads, self.head_dim)
        query = self.query_proj(tokens).reshape(head_shape)
        key = self.key_proj(tokens).reshape(head_shape)
        value = self.value_proj(tokens).reshape(head_shape)

        record_attention = tokens.ndim == 2
        head_outputs = []
        attentions = []
        for head in range(self.num_heads):
            attended, weights = scaled_dot_product_attention(
                query[..., head, :], key[..., head, :], value[..., head, :]
            )
            head_outputs.append(attended)
            if record_attention:
                attentions.append(weights)
        if record_attention:
            self._last_attention = np.stack(attentions, axis=-3)
        concatenated = np.concatenate(head_outputs, axis=-1)
        output = self.out_proj(concatenated)
        return layer_norm(tokens + output, axis=-1)
