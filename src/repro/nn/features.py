"""Grid (cell) feature extraction shared by both simulated detectors.

Both detector families pool the image into a grid of cells (the single-stage
detector's anchor grid, the transformer's patch tokens).  Each cell is
described by a small feature vector: mean RGB, per-channel standard
deviation and mean gradient magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.conv import (
    avg_pool,
    avg_pool_batch,
    gradient_magnitude,
    std_pool,
    std_pool_batch,
)
from repro.nn.incremental import (
    BBox,
    bbox_is_empty,
    gather_window,
    gradient_magnitude_window,
)

#: Number of features per cell produced by :class:`GridFeatureExtractor`.
CELL_FEATURE_DIM = 7


def cell_grid_shape(image_length: int, image_width: int, cell: int) -> tuple[int, int]:
    """Number of (rows, cols) of grid cells for an image and cell size."""
    if cell <= 0:
        raise ValueError("cell size must be positive")
    return image_length // cell, image_width // cell


@dataclass(frozen=True)
class GridFeatureExtractor:
    """Pools an image into per-cell feature vectors.

    Parameters
    ----------
    cell:
        Side length of one square cell in pixels.
    normalize:
        When True, pixel values are scaled by 1/255 before pooling so the
        features are in roughly unit range.
    """

    cell: int = 8
    normalize: bool = True

    def grid_shape(self, image: np.ndarray) -> tuple[int, int]:
        """Grid shape (rows, cols) for a given image."""
        return cell_grid_shape(image.shape[0], image.shape[1], self.cell)

    def cell_centers(self, image: np.ndarray) -> np.ndarray:
        """Pixel coordinates of every cell centre; shape (rows*cols, 2)."""
        rows, cols = self.grid_shape(image)
        row_centers = (np.arange(rows) + 0.5) * self.cell
        col_centers = (np.arange(cols) + 0.5) * self.cell
        grid_row, grid_col = np.meshgrid(row_centers, col_centers, indexing="ij")
        return np.stack([grid_row.ravel(), grid_col.ravel()], axis=1)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        """Extract features; returns array of shape (rows, cols, 7)."""
        image = np.asarray(image, dtype=np.float64)
        if image.ndim != 3 or image.shape[2] != 3:
            raise ValueError(f"expected an RGB image (L, W, 3), got {image.shape}")
        if self.normalize:
            image = image / 255.0
        mean_rgb = avg_pool(image, self.cell)
        std_rgb = std_pool(image, self.cell)
        grad = gradient_magnitude(image)
        mean_grad = avg_pool(grad, self.cell)[..., None]
        features = np.concatenate([mean_rgb, std_rgb, mean_grad], axis=-1)
        return features

    def flat(self, image: np.ndarray) -> np.ndarray:
        """Extract features flattened to (rows*cols, 7)."""
        features = self(image)
        return features.reshape(-1, features.shape[-1])

    def window_features(
        self, image: np.ndarray, mask: np.ndarray, cell_bbox: BBox
    ) -> np.ndarray:
        """Features of the ``cell_bbox`` cells of the perturbed image.

        Computes ``self(clip(image + mask, 0, 255))[cr0:cr1, cc0:cc1]``
        without materialising the full perturbed image: only the cell-aligned
        pixel window plus the 1-pixel Sobel halo is gathered (with symmetric
        reflection at image borders) and pushed through the same pooling and
        gradient operations, so the result is bit-identical to the full
        extraction — the property the incremental-inference parity suite
        enforces.
        """
        if bbox_is_empty(cell_bbox):
            return np.zeros((0, 0, CELL_FEATURE_DIM), dtype=np.float64)
        image = np.asarray(image, dtype=np.float64)
        mask = np.asarray(mask, dtype=np.float64)
        cr0, cr1, cc0, cc1 = cell_bbox
        pr0, pr1 = cr0 * self.cell, cr1 * self.cell
        pc0, pc1 = cc0 * self.cell, cc1 * self.cell
        # One extra pixel on every side feeds the Sobel halo; the perturbed
        # values are built in-window from clip(image + mask).
        rows, cols = (pr0 - 1, pr1 + 1), (pc0 - 1, pc1 + 1)
        window = np.clip(
            gather_window(image, rows, cols) + gather_window(mask, rows, cols),
            0.0,
            255.0,
        )
        if self.normalize:
            window = window / 255.0
        interior = window[1:-1, 1:-1]
        mean_rgb = avg_pool(interior, self.cell)
        std_rgb = std_pool(interior, self.cell)
        grad = gradient_magnitude_window(window)
        mean_grad = avg_pool(grad, self.cell)[..., None]
        return np.concatenate([mean_rgb, std_rgb, mean_grad], axis=-1)

    def batch(self, images: np.ndarray) -> np.ndarray:
        """Extract features for a stack of images; returns (B, rows, cols, 7).

        The batched pooling and gradient filters perform the same per-image
        operations as :meth:`__call__`, so ``batch(images)[b]`` is
        bit-identical to ``self(images[b])`` — the property the population
        evaluation fast path relies on.
        """
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4 or images.shape[3] != 3:
            raise ValueError(
                f"expected an RGB image batch (B, L, W, 3), got {images.shape}"
            )
        if self.normalize:
            images = images / 255.0
        mean_rgb = avg_pool_batch(images, self.cell)
        std_rgb = std_pool_batch(images, self.cell)
        grad = gradient_magnitude(images)
        mean_grad = avg_pool_batch(grad[..., None], self.cell)
        return np.concatenate([mean_rgb, std_rgb, mean_grad], axis=-1)
