"""Elementwise operators, normalisation and positional encodings."""

from __future__ import annotations

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def softmax(x: np.ndarray, axis: int = -1, temperature: float = 1.0) -> np.ndarray:
    """Numerically stable softmax along ``axis`` with optional temperature."""
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    # One fresh buffer mutated in place: the values are identical to the
    # textbook exp(shifted)/sum(exp) form, but large attention batches avoid
    # three extra array-sized temporaries.  float32 input stays float32 (the
    # reduced-precision fidelity path); everything else is computed in
    # float64 exactly as before.
    arr = np.asarray(x)
    if arr.dtype != np.float32:
        arr = np.asarray(arr, dtype=np.float64)
    scaled = arr / float(temperature)
    scaled -= np.max(scaled, axis=axis, keepdims=True)
    np.exp(scaled, out=scaled)
    scaled /= np.sum(scaled, axis=axis, keepdims=True)
    return scaled


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Log of the softmax, computed stably."""
    shifted = np.asarray(x, dtype=np.float64)
    shifted = shifted - np.max(shifted, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def layer_norm(x: np.ndarray, axis: int = -1, eps: float = 1e-6) -> np.ndarray:
    """Zero-mean, unit-variance normalisation along ``axis``."""
    mean = np.mean(x, axis=axis, keepdims=True)
    var = np.var(x, axis=axis, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


def positional_encoding(num_positions: int, dim: int) -> np.ndarray:
    """Sinusoidal positional encoding matrix of shape (num_positions, dim)."""
    if dim <= 0 or num_positions <= 0:
        raise ValueError("num_positions and dim must be positive")
    positions = np.arange(num_positions, dtype=np.float64)[:, None]
    div_term = np.exp(
        np.arange(0, dim, 2, dtype=np.float64) * (-np.log(10000.0) / dim)
    )
    encoding = np.zeros((num_positions, dim), dtype=np.float64)
    encoding[:, 0::2] = np.sin(positions * div_term)
    encoding[:, 1::2] = np.cos(positions * div_term[: encoding[:, 1::2].shape[1]])
    return encoding


def grid_positional_encoding(rows: int, cols: int, dim: int) -> np.ndarray:
    """2-D positional encoding for a grid of cells, shape (rows*cols, dim).

    Half of the channels encode the row index, half the column index.
    """
    if dim % 2 != 0:
        raise ValueError("dim must be even for a 2-D grid encoding")
    half = dim // 2
    row_enc = positional_encoding(rows, half)
    col_enc = positional_encoding(cols, half)
    encoding = np.zeros((rows, cols, dim), dtype=np.float64)
    encoding[:, :, :half] = row_enc[:, None, :]
    encoding[:, :, half:] = col_enc[None, :, :]
    return encoding.reshape(rows * cols, dim)
