"""Minimal neural-network substrate in pure NumPy.

The simulated detectors in :mod:`repro.detectors` are built from these
primitives.  Only the forward pass is needed — the attack is black-box — so
this package implements inference-time operators: activation functions,
layer normalisation, 2-D convolution / pooling, grid (cell) feature
extraction, positional encodings and multi-head self-attention.
"""

from repro.nn.ops import (
    layer_norm,
    log_softmax,
    positional_encoding,
    relu,
    sigmoid,
    softmax,
)
from repro.nn.conv import (
    avg_pool,
    avg_pool_batch,
    box_filter,
    box_filter_batch,
    conv2d,
    gradient_magnitude,
    sobel_gradients,
    std_pool,
    std_pool_batch,
)
from repro.nn.features import GridFeatureExtractor, cell_grid_shape
from repro.nn.attention import MultiHeadSelfAttention, scaled_dot_product_attention
from repro.nn.incremental import (
    BBox,
    bbox_area,
    bbox_intersection,
    bbox_is_empty,
    bbox_union,
    box_filter_window,
    dilate_bbox,
    gather_window,
    mask_nonzero_bbox,
    pixel_bbox_to_cell_bbox,
)
from repro.nn.linear import Linear

__all__ = [
    "BBox",
    "bbox_area",
    "bbox_intersection",
    "bbox_is_empty",
    "bbox_union",
    "box_filter_window",
    "dilate_bbox",
    "gather_window",
    "mask_nonzero_bbox",
    "pixel_bbox_to_cell_bbox",
    "layer_norm",
    "log_softmax",
    "positional_encoding",
    "relu",
    "sigmoid",
    "softmax",
    "avg_pool",
    "avg_pool_batch",
    "box_filter",
    "box_filter_batch",
    "conv2d",
    "gradient_magnitude",
    "sobel_gradients",
    "std_pool",
    "std_pool_batch",
    "GridFeatureExtractor",
    "cell_grid_shape",
    "MultiHeadSelfAttention",
    "scaled_dot_product_attention",
    "Linear",
]
