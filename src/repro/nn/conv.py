"""2-D convolution, pooling and gradient filters (pure NumPy)."""

from __future__ import annotations

import numpy as np
from scipy.signal import convolve2d


def conv2d(image: np.ndarray, kernel: np.ndarray, mode: str = "same") -> np.ndarray:
    """2-D convolution of a single-channel image with a kernel.

    Multi-channel images are convolved channel-wise and the results summed,
    mirroring a convolution layer with a single output channel.
    """
    image = np.asarray(image, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    if image.ndim == 2:
        return convolve2d(image, kernel, mode=mode, boundary="symm")
    if image.ndim == 3:
        channels = [
            convolve2d(image[:, :, c], kernel, mode=mode, boundary="symm")
            for c in range(image.shape[2])
        ]
        return np.sum(channels, axis=0)
    raise ValueError(f"expected a 2-D or 3-D image, got shape {image.shape}")


def box_filter(image: np.ndarray, size: int = 3) -> np.ndarray:
    """Mean filter with a ``size x size`` box kernel."""
    if size <= 0:
        raise ValueError("size must be positive")
    kernel = np.ones((size, size), dtype=np.float64) / (size * size)
    return conv2d(image, kernel)


def sobel_gradients(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sobel gradients (d/drow, d/dcol) of an image (channels summed)."""
    sobel_row = np.array([[-1, -2, -1], [0, 0, 0], [1, 2, 1]], dtype=np.float64)
    sobel_col = sobel_row.T
    return conv2d(image, sobel_row), conv2d(image, sobel_col)


def gradient_magnitude(image: np.ndarray) -> np.ndarray:
    """Magnitude of the Sobel gradient."""
    grad_row, grad_col = sobel_gradients(image)
    return np.hypot(grad_row, grad_col)


def avg_pool(image: np.ndarray, cell: int) -> np.ndarray:
    """Average-pool an image over non-overlapping ``cell x cell`` blocks.

    Trailing rows/columns that do not fill a whole cell are dropped.  Works
    on 2-D (H, W) and 3-D (H, W, C) arrays; returns (H//cell, W//cell[, C]).
    """
    if cell <= 0:
        raise ValueError("cell must be positive")
    image = np.asarray(image, dtype=np.float64)
    rows = (image.shape[0] // cell) * cell
    cols = (image.shape[1] // cell) * cell
    if rows == 0 or cols == 0:
        raise ValueError("image smaller than one pooling cell")
    trimmed = image[:rows, :cols]
    if image.ndim == 2:
        return trimmed.reshape(rows // cell, cell, cols // cell, cell).mean(axis=(1, 3))
    if image.ndim == 3:
        return trimmed.reshape(
            rows // cell, cell, cols // cell, cell, image.shape[2]
        ).mean(axis=(1, 3))
    raise ValueError(f"expected a 2-D or 3-D image, got shape {image.shape}")


def std_pool(image: np.ndarray, cell: int) -> np.ndarray:
    """Per-cell standard deviation over non-overlapping blocks."""
    if cell <= 0:
        raise ValueError("cell must be positive")
    image = np.asarray(image, dtype=np.float64)
    rows = (image.shape[0] // cell) * cell
    cols = (image.shape[1] // cell) * cell
    if rows == 0 or cols == 0:
        raise ValueError("image smaller than one pooling cell")
    trimmed = image[:rows, :cols]
    if image.ndim == 2:
        return trimmed.reshape(rows // cell, cell, cols // cell, cell).std(axis=(1, 3))
    if image.ndim == 3:
        return trimmed.reshape(
            rows // cell, cell, cols // cell, cell, image.shape[2]
        ).std(axis=(1, 3))
    raise ValueError(f"expected a 2-D or 3-D image, got shape {image.shape}")
