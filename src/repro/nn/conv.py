"""2-D convolution, pooling and gradient filters (pure NumPy).

Every filter here has two entry points sharing one implementation:

* the classic single-image form (2-D ``(H, W)`` or 3-D ``(H, W, C)``), and
* a batched form over a stack of images ``(B, H, W[, C])``.

The batched forms exist for the population-evaluation fast path (see
:meth:`repro.nn.features.GridFeatureExtractor.batch`): evaluating a whole
NSGA-II population stacks all perturbed images into one array and runs each
filter once.  Both forms perform the same floating-point operations in the
same order per image, so batched results are bit-identical to looping the
single-image form — a property the parity test suite enforces.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import convolve2d


def conv2d(image: np.ndarray, kernel: np.ndarray, mode: str = "same") -> np.ndarray:
    """2-D convolution of a single-channel image with a kernel.

    Multi-channel images are convolved channel-wise and the results summed,
    mirroring a convolution layer with a single output channel.
    """
    image = np.asarray(image, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    if image.ndim == 2:
        return convolve2d(image, kernel, mode=mode, boundary="symm")
    if image.ndim == 3:
        channels = [
            convolve2d(image[:, :, c], kernel, mode=mode, boundary="symm")
            for c in range(image.shape[2])
        ]
        return np.sum(channels, axis=0)
    raise ValueError(f"expected a 2-D or 3-D image, got shape {image.shape}")


def _convolve_same_symm(stack: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Convolution over the last two axes with symmetric boundary handling.

    ``stack`` may have any number of leading (batch/channel) axes; the
    kernel must have odd side lengths.  Implemented as a sum of weighted
    shifted slices, which vectorises across the leading axes while keeping
    the per-element operation order independent of the batch size.
    """
    kernel = np.asarray(kernel, dtype=np.float64)
    kh, kw = kernel.shape
    if kh % 2 == 0 or kw % 2 == 0:
        raise ValueError("kernel side lengths must be odd")
    height, width = stack.shape[-2], stack.shape[-1]
    pad = [(0, 0)] * (stack.ndim - 2) + [(kh // 2, kh // 2), (kw // 2, kw // 2)]
    padded = np.pad(stack, pad, mode="symmetric")
    flipped = kernel[::-1, ::-1]
    out = np.zeros(stack.shape, dtype=np.float64)
    for i in range(kh):
        for j in range(kw):
            weight = flipped[i, j]
            if weight == 0.0:
                continue
            out += weight * padded[..., i : i + height, j : j + width]
    return out


def _channels_leading(image: np.ndarray) -> np.ndarray:
    """Move a trailing channel axis in front of the two spatial axes."""
    return np.moveaxis(image, -1, -3)


def box_filter(image: np.ndarray, size: int = 3) -> np.ndarray:
    """Mean filter with a ``size x size`` box kernel."""
    if size <= 0:
        raise ValueError("size must be positive")
    kernel = np.ones((size, size), dtype=np.float64) / (size * size)
    if size % 2 == 0:
        return conv2d(image, kernel)
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 2:
        return _convolve_same_symm(image, kernel)
    if image.ndim == 3:
        return _convolve_same_symm(_channels_leading(image), kernel).sum(axis=0)
    raise ValueError(f"expected a 2-D or 3-D image, got shape {image.shape}")


def box_filter_batch(stack: np.ndarray, size: int = 3) -> np.ndarray:
    """Batched mean filter over the two *middle* axes of ``(B, H, W, C)``.

    Unlike :func:`box_filter` the channels are filtered independently (no
    channel summing): the single-stage detector smooths each feature map on
    its own.  Equivalent to ``box_filter(stack[b, :, :, c])`` per slice.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 4:
        raise ValueError(f"expected a (B, H, W, C) stack, got shape {stack.shape}")
    if size % 2 == 0:
        # Even kernels keep the scipy 'same'-mode alignment of the single
        # slice path; loop the slices so both paths stay bit-identical.
        return np.stack(
            [
                np.stack(
                    [box_filter(stack[b, :, :, c], size) for c in range(stack.shape[3])],
                    axis=-1,
                )
                for b in range(stack.shape[0])
            ],
            axis=0,
        )
    kernel = np.ones((size, size), dtype=np.float64) / (size * size)
    filtered = _convolve_same_symm(_channels_leading(stack), kernel)
    return np.moveaxis(filtered, -3, -1)


#: The Sobel row-derivative kernel; the column kernel is its transpose.
_SOBEL_ROW = np.array([[-1, -2, -1], [0, 0, 0], [1, 2, 1]], dtype=np.float64)


def sobel_gradients(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sobel gradients (d/drow, d/dcol) of an image (channels summed).

    Accepts 2-D ``(H, W)``, 3-D ``(H, W, C)`` and batched 4-D
    ``(B, H, W, C)`` input; the batched form returns ``(B, H, W)`` arrays
    bit-identical to calling the single-image form per slice.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 2:
        return (
            _convolve_same_symm(image, _SOBEL_ROW),
            _convolve_same_symm(image, _SOBEL_ROW.T),
        )
    if image.ndim == 3 or image.ndim == 4:
        leading = _channels_leading(image)
        grad_row = _convolve_same_symm(leading, _SOBEL_ROW).sum(axis=-3)
        grad_col = _convolve_same_symm(leading, _SOBEL_ROW.T).sum(axis=-3)
        return grad_row, grad_col
    raise ValueError(f"expected a 2-D, 3-D or batched 4-D image, got {image.shape}")


def gradient_magnitude(image: np.ndarray) -> np.ndarray:
    """Magnitude of the Sobel gradient (batched input supported)."""
    grad_row, grad_col = sobel_gradients(image)
    return np.hypot(grad_row, grad_col)


def _trim_to_cells(image: np.ndarray, cell: int) -> np.ndarray:
    """Drop trailing rows/columns that do not fill a whole ``cell`` block."""
    if cell <= 0:
        raise ValueError("cell must be positive")
    rows = (image.shape[0] // cell) * cell
    cols = (image.shape[1] // cell) * cell
    if rows == 0 or cols == 0:
        raise ValueError("image smaller than one pooling cell")
    return image[:rows, :cols]


def _block_sum(trimmed: np.ndarray, cell: int) -> np.ndarray:
    """Sum over non-overlapping ``cell x cell`` blocks of the leading axes.

    Accumulates in two fixed-order stages — first the ``cell`` column
    offsets, then the ``cell`` row offsets — so the python-loop overhead is
    ``2 * cell`` iterations instead of ``cell**2``.  Every add is
    elementwise over the block grid, so the per-element accumulation
    sequence is independent of the array extent — pooling a window of an
    image is bit-identical to slicing the pooled full image, the property
    the incremental (dirty-region) inference path splices on.
    """
    rows = trimmed.shape[0]
    cols = np.zeros((rows, trimmed.shape[1] // cell) + trimmed.shape[2:], dtype=np.float64)
    for j in range(cell):
        cols += trimmed[:, j::cell]
    out = np.zeros((rows // cell,) + cols.shape[1:], dtype=np.float64)
    for i in range(cell):
        out += cols[i::cell]
    return out


def avg_pool(image: np.ndarray, cell: int) -> np.ndarray:
    """Average-pool an image over non-overlapping ``cell x cell`` blocks.

    Trailing rows/columns that do not fill a whole cell are dropped.  Works
    on 2-D (H, W) and 3-D (H, W, C) arrays; returns (H//cell, W//cell[, C]).
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim not in (2, 3):
        raise ValueError(f"expected a 2-D or 3-D image, got shape {image.shape}")
    trimmed = _trim_to_cells(image, cell)
    return _block_sum(trimmed, cell) / float(cell * cell)


def _block_sum_batch(trimmed: np.ndarray, cell: int) -> np.ndarray:
    """Batched :func:`_block_sum` over the middle axes of ``(B, H, W, C)``.

    Same two-stage (columns, then rows) fixed accumulation order as the
    single-image form, so per-image results are bit-identical.
    """
    rows = trimmed.shape[1]
    cols = np.zeros(
        (trimmed.shape[0], rows, trimmed.shape[2] // cell, trimmed.shape[3]),
        dtype=np.float64,
    )
    for j in range(cell):
        cols += trimmed[:, :, j::cell]
    out = np.zeros((cols.shape[0], rows // cell) + cols.shape[2:], dtype=np.float64)
    for i in range(cell):
        out += cols[:, i::cell]
    return out


def avg_pool_batch(stack: np.ndarray, cell: int) -> np.ndarray:
    """Average-pool a batch ``(B, H, W, C)`` over ``cell x cell`` blocks.

    Returns ``(B, H//cell, W//cell, C)``; bit-identical to applying
    :func:`avg_pool` to every batch element.
    """
    if cell <= 0:
        raise ValueError("cell must be positive")
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 4:
        raise ValueError(f"expected a (B, H, W, C) stack, got shape {stack.shape}")
    rows = (stack.shape[1] // cell) * cell
    cols = (stack.shape[2] // cell) * cell
    if rows == 0 or cols == 0:
        raise ValueError("image smaller than one pooling cell")
    return _block_sum_batch(stack[:, :rows, :cols], cell) / float(cell * cell)


def std_pool_batch(stack: np.ndarray, cell: int) -> np.ndarray:
    """Per-cell standard deviation over a batch ``(B, H, W, C)``."""
    if cell <= 0:
        raise ValueError("cell must be positive")
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 4:
        raise ValueError(f"expected a (B, H, W, C) stack, got shape {stack.shape}")
    rows = (stack.shape[1] // cell) * cell
    cols = (stack.shape[2] // cell) * cell
    if rows == 0 or cols == 0:
        raise ValueError("image smaller than one pooling cell")
    trimmed = stack[:, :rows, :cols]
    norm = float(cell * cell)
    mean = _block_sum_batch(trimmed, cell) / norm
    mean_rows = np.repeat(mean, cell, axis=1)
    sq_cols = np.zeros_like(mean_rows)
    for j in range(cell):
        deviation = trimmed[:, :, j::cell] - mean_rows
        sq_cols += deviation * deviation
    squares = np.zeros_like(mean)
    for i in range(cell):
        squares += sq_cols[:, i::cell]
    return np.sqrt(squares / norm)


def std_pool(image: np.ndarray, cell: int) -> np.ndarray:
    """Per-cell standard deviation over non-overlapping blocks.

    Same fixed-order block accumulation as :func:`avg_pool`, so windowed
    pooling matches sliced full-image pooling bit for bit.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim not in (2, 3):
        raise ValueError(f"expected a 2-D or 3-D image, got shape {image.shape}")
    trimmed = _trim_to_cells(image, cell)
    norm = float(cell * cell)
    mean = _block_sum(trimmed, cell) / norm
    mean_rows = np.repeat(mean, cell, axis=0)
    sq_cols = np.zeros_like(mean_rows)
    for j in range(cell):
        deviation = trimmed[:, j::cell] - mean_rows
        sq_cols += deviation * deviation
    squares = np.zeros_like(mean)
    for i in range(cell):
        squares += sq_cols[i::cell]
    return np.sqrt(squares / norm)
