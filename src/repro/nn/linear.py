"""A tiny linear layer with seeded random initialisation."""

from __future__ import annotations

import numpy as np


class Linear:
    """Affine map ``y = x @ W + b`` with Xavier-style random init.

    Only the forward pass is implemented; weights are either randomly
    initialised from a seeded generator or set explicitly.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | int | None = None,
        bias: bool = True,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        if rng is None or isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng if rng is not None else 0)
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input with last dim {self.in_features}, got {x.shape[-1]}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out
