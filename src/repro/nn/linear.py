"""A tiny linear layer with seeded random initialisation."""

from __future__ import annotations

import numpy as np


class Linear:
    """Affine map ``y = x @ W + b`` with Xavier-style random init.

    Only the forward pass is implemented; weights are either randomly
    initialised from a seeded generator or set explicitly.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | int | None = None,
        bias: bool = True,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        if rng is None or isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng if rng is not None else 0)
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input with last dim {self.in_features}, got {x.shape[-1]}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def at(self, x: np.ndarray, dtype: np.dtype | str = np.float64) -> np.ndarray:
        """Forward pass at a requested activation dtype.

        ``float64`` delegates to :meth:`__call__` (bit-identical to the
        exact path); reduced precision runs the matmul entirely in that
        dtype against lazily cached casts of the parameters, so repeated
        approximate evaluations do not re-cast the weights.
        """
        dtype = np.dtype(dtype)
        if dtype == np.float64:
            return self(x)
        x = np.asarray(x, dtype=dtype)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input with last dim {self.in_features}, got {x.shape[-1]}"
            )
        weight, bias = self._params_at(dtype)
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out

    def _params_at(self, dtype: np.dtype) -> tuple[np.ndarray, np.ndarray | None]:
        # getattr rather than __init__ so instances pickled by older code
        # (worker-shipped models) grow the cache lazily.
        cache = getattr(self, "_param_casts", None)
        if cache is None:
            cache = {}
            self._param_casts = cache
        entry = cache.get(dtype.name)
        # Weights may be reassigned after construction; identity-check the
        # source arrays so a stale cast can never be served.
        if entry is not None and entry[0] is self.weight and entry[1] is self.bias:
            return entry[2], entry[3]
        weight = np.asarray(self.weight, dtype=dtype)
        bias = None if self.bias is None else np.asarray(self.bias, dtype=dtype)
        cache[dtype.name] = (self.weight, self.bias, weight, bias)
        return weight, bias
