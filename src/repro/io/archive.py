"""Experiment archives: a directory of attack results plus a CSV index."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.analysis.reporting import write_csv
from repro.core.results import AttackResult
from repro.io.serialization import load_attack_result, save_attack_result


@dataclass
class ExperimentArchive:
    """Stores many attack results under one root directory.

    Layout::

        <root>/
          index.json          # run id -> label mapping
          index.csv           # flat table of front objectives per run
          runs/<run_id>/      # one saved AttackResult per run

    The archive is append-only; :meth:`rebuild_index` regenerates the CSV
    from the stored runs.
    """

    root: Path

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        (self.root / "runs").mkdir(parents=True, exist_ok=True)
        if not self._index_path.exists():
            self._index_path.write_text(json.dumps({}))

    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    def _read_index(self) -> dict[str, str]:
        return json.loads(self._index_path.read_text())

    def _write_index(self, index: dict[str, str]) -> None:
        self._index_path.write_text(json.dumps(index, indent=2, sort_keys=True))

    def __len__(self) -> int:
        return len(self._read_index())

    def run_ids(self) -> list[str]:
        """All stored run identifiers, sorted."""
        return sorted(self._read_index())

    def add(self, result: AttackResult, label: str, run_id: str | None = None) -> str:
        """Store one attack result under ``label``; returns the run id."""
        index = self._read_index()
        if run_id is None:
            run_id = f"run{len(index):04d}"
        if run_id in index:
            raise ValueError(f"run id {run_id!r} already exists in the archive")
        save_attack_result(result, self.root / "runs" / run_id)
        index[run_id] = label
        self._write_index(index)
        return run_id

    def load(self, run_id: str) -> AttackResult:
        """Load one stored attack result."""
        index = self._read_index()
        if run_id not in index:
            raise KeyError(f"unknown run id: {run_id!r}")
        return load_attack_result(self.root / "runs" / run_id)

    def label_of(self, run_id: str) -> str:
        return self._read_index()[run_id]

    def iter_results(self) -> Iterator[tuple[str, str, AttackResult]]:
        """Yield ``(run_id, label, result)`` for every stored run."""
        for run_id, label in sorted(self._read_index().items()):
            yield run_id, label, self.load(run_id)

    def rebuild_index(self) -> Path:
        """Regenerate ``index.csv`` with one row per front solution."""
        rows = []
        for run_id, label, result in self.iter_results():
            for position, solution in enumerate(result.pareto_front):
                rows.append(
                    {
                        "run_id": run_id,
                        "label": label,
                        "solution": position,
                        "intensity": solution.intensity,
                        "degradation": solution.degradation,
                        "distance": solution.distance,
                    }
                )
        path = self.root / "index.csv"
        write_csv(rows, path)
        return path
