"""Serialisation of masks, predictions and attack results.

File formats:

* filter masks — ``.npz`` with a single ``values`` array,
* predictions — JSON (list of box dictionaries),
* attack results — a directory containing ``meta.json`` (objectives,
  detector name, clean prediction, per-solution metadata) and
  ``arrays.npz`` (the image and every solution's mask).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.masks import FilterMask
from repro.core.results import AttackResult, ParetoSolution
from repro.detection.boxes import BoundingBox
from repro.detection.prediction import Prediction


def save_mask(mask: FilterMask | np.ndarray, path: str | Path) -> Path:
    """Save a filter mask to an ``.npz`` file (the suffix is added if missing)."""
    values = mask.values if isinstance(mask, FilterMask) else np.asarray(mask)
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(path, values=values)
    return path


def load_mask(path: str | Path) -> FilterMask:
    """Load a filter mask saved by :func:`save_mask`."""
    with np.load(path) as archive:
        return FilterMask(archive["values"])


def prediction_to_dict(prediction: Prediction) -> list[dict[str, Any]]:
    """Convert a prediction to a JSON-serialisable list of box dicts."""
    return [
        {
            "cl": int(box.cl),
            "x": float(box.x),
            "y": float(box.y),
            "l": float(box.l),
            "w": float(box.w),
            "score": float(box.score),
        }
        for box in prediction.boxes
    ]


def prediction_from_dict(data: list[dict[str, Any]]) -> Prediction:
    """Rebuild a prediction from :func:`prediction_to_dict` output."""
    return Prediction(
        [
            BoundingBox(
                cl=int(item["cl"]),
                x=float(item["x"]),
                y=float(item["y"]),
                l=float(item["l"]),
                w=float(item["w"]),
                score=float(item.get("score", 1.0)),
            )
            for item in data
        ]
    )


def save_prediction(prediction: Prediction, path: str | Path) -> Path:
    """Save a prediction as JSON."""
    path = Path(path)
    path.write_text(json.dumps(prediction_to_dict(prediction), indent=2))
    return path


def load_prediction(path: str | Path) -> Prediction:
    """Load a prediction saved by :func:`save_prediction`."""
    return prediction_from_dict(json.loads(Path(path).read_text()))


def save_attack_result(result: AttackResult, directory: str | Path) -> Path:
    """Save an attack result (metadata + masks + image) to a directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    meta: dict[str, Any] = {
        "detector_name": result.detector_name,
        "num_evaluations": result.num_evaluations,
        "cache_hits": result.cache_hits,
        "architecture": result.architecture,
        "model_seed": result.model_seed,
        "scene_index": result.scene_index,
        "job_id": result.job_id,
        "clean_prediction": prediction_to_dict(result.clean_prediction),
        "solutions": [],
    }
    arrays: dict[str, np.ndarray] = {"image": result.image}
    for index, solution in enumerate(result.solutions):
        meta["solutions"].append(
            {
                "intensity": solution.intensity,
                "degradation": solution.degradation,
                "distance": solution.distance,
                "rank": solution.rank,
                "extras": solution.extras,
                "perturbed_prediction": (
                    prediction_to_dict(solution.perturbed_prediction)
                    if solution.perturbed_prediction is not None
                    else None
                ),
            }
        )
        arrays[f"mask_{index}"] = solution.mask.values

    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    np.savez_compressed(directory / "arrays.npz", **arrays)
    return directory


def load_attack_result(directory: str | Path) -> AttackResult:
    """Load an attack result saved by :func:`save_attack_result`.

    Error transitions are not persisted (they can be recomputed from the
    stored predictions); history is not persisted either.
    """
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    with np.load(directory / "arrays.npz") as arrays:
        image = arrays["image"]
        solutions: list[ParetoSolution] = []
        for index, solution_meta in enumerate(meta["solutions"]):
            perturbed = solution_meta.get("perturbed_prediction")
            solutions.append(
                ParetoSolution(
                    mask=FilterMask(arrays[f"mask_{index}"]),
                    intensity=float(solution_meta["intensity"]),
                    degradation=float(solution_meta["degradation"]),
                    distance=float(solution_meta["distance"]),
                    rank=int(solution_meta["rank"]),
                    extras=dict(solution_meta.get("extras", {})),
                    perturbed_prediction=(
                        prediction_from_dict(perturbed) if perturbed is not None else None
                    ),
                )
            )
    def _optional_int(key: str) -> int | None:
        value = meta.get(key)
        return None if value is None else int(value)

    return AttackResult(
        image=image,
        clean_prediction=prediction_from_dict(meta["clean_prediction"]),
        solutions=solutions,
        detector_name=meta.get("detector_name", ""),
        num_evaluations=int(meta.get("num_evaluations", 0)),
        cache_hits=int(meta.get("cache_hits", 0)),
        architecture=str(meta.get("architecture", "") or ""),
        model_seed=_optional_int("model_seed"),
        scene_index=_optional_int("scene_index"),
        job_id=_optional_int("job_id"),
    )
