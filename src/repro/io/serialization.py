"""Serialisation of masks, predictions, attack results and sweep reports.

File formats:

* filter masks — ``.npz`` with a single ``values`` array,
* predictions — JSON (list of box dictionaries),
* attack results — a directory containing ``meta.json`` (objectives,
  detector name, clean prediction, per-solution metadata) and
  ``arrays.npz`` (the image and every solution's mask),
* transferability reports — a directory with ``meta.json`` (model names,
  intensities, execution provenance) and ``arrays.npz`` (the transfer
  matrix and the per-source best masks),
* defense evaluations — a directory with ``meta.json`` (degradations,
  recalls, execution provenance) and one attack-result subdirectory per
  attacked variant.

Sweep reports persist the shared execution-provenance summary produced by
:meth:`repro.experiments.engine.ExecutionReport.summary`, so a saved report
records the backend, worker count and cache traffic that produced it.

Besides the directory formats, this module exposes *pure JSON* round-trips
(:func:`array_to_jsonable` / :func:`attack_result_to_jsonable` and their
inverses): one self-contained dict per object, arrays carried as base64 raw
bytes with dtype and shape, so the round-trip is bit-exact.  The
checkpoint journal (:mod:`repro.experiments.checkpoint`) appends these
dicts as JSONL records — one line per completed job — and reloads them on
resume.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.masks import FilterMask
from repro.core.results import AttackResult, ParetoSolution
from repro.defenses.evaluation import DefenseEvaluation, EnsembleDefenseEvaluation
from repro.detection.boxes import BoundingBox
from repro.detection.prediction import Prediction
from repro.experiments.transfer import TransferabilityResult


def save_mask(mask: FilterMask | np.ndarray, path: str | Path) -> Path:
    """Save a filter mask to an ``.npz`` file (the suffix is added if missing)."""
    values = mask.values if isinstance(mask, FilterMask) else np.asarray(mask)
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(path, values=values)
    return path


def load_mask(path: str | Path) -> FilterMask:
    """Load a filter mask saved by :func:`save_mask`."""
    with np.load(path) as archive:
        return FilterMask(archive["values"])


def prediction_to_dict(prediction: Prediction) -> list[dict[str, Any]]:
    """Convert a prediction to a JSON-serialisable list of box dicts."""
    return [
        {
            "cl": int(box.cl),
            "x": float(box.x),
            "y": float(box.y),
            "l": float(box.l),
            "w": float(box.w),
            "score": float(box.score),
        }
        for box in prediction.boxes
    ]


def prediction_from_dict(data: list[dict[str, Any]]) -> Prediction:
    """Rebuild a prediction from :func:`prediction_to_dict` output."""
    return Prediction(
        [
            BoundingBox(
                cl=int(item["cl"]),
                x=float(item["x"]),
                y=float(item["y"]),
                l=float(item["l"]),
                w=float(item["w"]),
                score=float(item.get("score", 1.0)),
            )
            for item in data
        ]
    )


def array_to_jsonable(array: np.ndarray) -> dict[str, Any]:
    """Encode an array as a JSON-safe dict, bit-exactly.

    The raw buffer travels as base64 (JSON floats would survive a Python
    round-trip too, but raw bytes also preserve dtype, shape and byte
    order exactly, for any dtype).
    """
    array = np.ascontiguousarray(array)
    return {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def array_from_jsonable(data: dict[str, Any]) -> np.ndarray:
    """Rebuild an array encoded by :func:`array_to_jsonable`."""
    raw = base64.b64decode(data["data"])
    array = np.frombuffer(raw, dtype=np.dtype(data["dtype"]))
    return array.reshape([int(size) for size in data["shape"]]).copy()


def save_prediction(prediction: Prediction, path: str | Path) -> Path:
    """Save a prediction as JSON."""
    path = Path(path)
    path.write_text(json.dumps(prediction_to_dict(prediction), indent=2))
    return path


def load_prediction(path: str | Path) -> Prediction:
    """Load a prediction saved by :func:`save_prediction`."""
    return prediction_from_dict(json.loads(Path(path).read_text()))


def _solution_meta(solution: ParetoSolution) -> dict[str, Any]:
    """The JSON-safe metadata of one solution (mask carried separately)."""
    return {
        "intensity": solution.intensity,
        "degradation": solution.degradation,
        "distance": solution.distance,
        "rank": solution.rank,
        "extras": solution.extras,
        "perturbed_prediction": (
            prediction_to_dict(solution.perturbed_prediction)
            if solution.perturbed_prediction is not None
            else None
        ),
    }


def _solution_from_meta(
    solution_meta: dict[str, Any], mask_values: np.ndarray
) -> ParetoSolution:
    """Rebuild one solution from :func:`_solution_meta` output + its mask."""
    perturbed = solution_meta.get("perturbed_prediction")
    return ParetoSolution(
        mask=FilterMask(mask_values),
        intensity=float(solution_meta["intensity"]),
        degradation=float(solution_meta["degradation"]),
        distance=float(solution_meta["distance"]),
        rank=int(solution_meta["rank"]),
        extras=dict(solution_meta.get("extras", {})),
        perturbed_prediction=(
            prediction_from_dict(perturbed) if perturbed is not None else None
        ),
    )


def _attack_result_meta(result: AttackResult) -> dict[str, Any]:
    """The shared JSON-safe metadata of an attack result (no arrays)."""
    return {
        "detector_name": result.detector_name,
        "num_evaluations": result.num_evaluations,
        "cache_hits": result.cache_hits,
        "architecture": result.architecture,
        "model_seed": result.model_seed,
        "scene_index": result.scene_index,
        "job_id": result.job_id,
        "clean_prediction": prediction_to_dict(result.clean_prediction),
        "solutions": [_solution_meta(solution) for solution in result.solutions],
    }


def _attack_result_from_meta(
    meta: dict[str, Any],
    image: np.ndarray,
    masks: "list[np.ndarray]",
) -> AttackResult:
    """Rebuild an attack result from shared metadata + its arrays."""

    def _optional_int(key: str) -> int | None:
        value = meta.get(key)
        return None if value is None else int(value)

    return AttackResult(
        image=image,
        clean_prediction=prediction_from_dict(meta["clean_prediction"]),
        solutions=[
            _solution_from_meta(solution_meta, mask_values)
            for solution_meta, mask_values in zip(meta["solutions"], masks)
        ],
        detector_name=meta.get("detector_name", ""),
        num_evaluations=int(meta.get("num_evaluations", 0)),
        cache_hits=int(meta.get("cache_hits", 0)),
        architecture=str(meta.get("architecture", "") or ""),
        model_seed=_optional_int("model_seed"),
        scene_index=_optional_int("scene_index"),
        job_id=_optional_int("job_id"),
    )


def attack_result_to_jsonable(result: AttackResult) -> dict[str, Any]:
    """Encode an attack result as one self-contained JSON-safe dict.

    Same provenance round-trip as :func:`save_attack_result` (history and
    transitions are dropped; everything :meth:`AttackResult.fingerprint`
    asserts survives bit-exactly), but arrays travel inline as base64 so
    the dict fits a single JSONL journal line.
    """
    meta = _attack_result_meta(result)
    meta["image"] = array_to_jsonable(result.image)
    meta["masks"] = [
        array_to_jsonable(solution.mask.values) for solution in result.solutions
    ]
    return meta


def attack_result_from_jsonable(data: dict[str, Any]) -> AttackResult:
    """Rebuild an attack result from :func:`attack_result_to_jsonable`."""
    return _attack_result_from_meta(
        data,
        image=array_from_jsonable(data["image"]),
        masks=[array_from_jsonable(mask) for mask in data.get("masks", [])],
    )


def save_attack_result(result: AttackResult, directory: str | Path) -> Path:
    """Save an attack result (metadata + masks + image) to a directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    meta = _attack_result_meta(result)
    arrays: dict[str, np.ndarray] = {"image": result.image}
    for index, solution in enumerate(result.solutions):
        arrays[f"mask_{index}"] = solution.mask.values

    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    np.savez_compressed(directory / "arrays.npz", **arrays)
    return directory


def load_attack_result(directory: str | Path) -> AttackResult:
    """Load an attack result saved by :func:`save_attack_result`.

    Error transitions are not persisted (they can be recomputed from the
    stored predictions); history is not persisted either.
    """
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    with np.load(directory / "arrays.npz") as arrays:
        image = arrays["image"]
        masks = [
            arrays[f"mask_{index}"] for index in range(len(meta["solutions"]))
        ]
        return _attack_result_from_meta(meta, image=image, masks=masks)


def save_transfer_result(result: TransferabilityResult, directory: str | Path) -> Path:
    """Save a transferability report (matrix + masks + provenance)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    meta: dict[str, Any] = {
        "report": "transferability",
        "model_names": list(result.model_names),
        "masks_intensity": [float(value) for value in result.masks_intensity],
        "experiment_seed": result.experiment_seed,
        "execution": result.execution,
    }
    arrays: dict[str, np.ndarray] = {"matrix": result.matrix}
    for index, mask in enumerate(result.best_masks):
        arrays[f"best_mask_{index}"] = np.asarray(mask)

    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    np.savez_compressed(directory / "arrays.npz", **arrays)
    return directory


def load_transfer_result(directory: str | Path) -> TransferabilityResult:
    """Load a transferability report saved by :func:`save_transfer_result`."""
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    with np.load(directory / "arrays.npz") as arrays:
        matrix = arrays["matrix"]
        best_masks = []
        index = 0
        while f"best_mask_{index}" in arrays:
            best_masks.append(arrays[f"best_mask_{index}"])
            index += 1
    seed = meta.get("experiment_seed")
    return TransferabilityResult(
        model_names=[str(name) for name in meta["model_names"]],
        matrix=matrix,
        masks_intensity=[float(value) for value in meta.get("masks_intensity", [])],
        best_masks=best_masks,
        experiment_seed=None if seed is None else int(seed),
        execution=meta.get("execution"),
    )


def save_defense_evaluation(
    evaluation: DefenseEvaluation, directory: str | Path
) -> Path:
    """Save a defense evaluation: scalars + both attack-result subfolders."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    meta: dict[str, Any] = {
        "report": "defense-evaluation",
        "undefended_best_degradation": float(evaluation.undefended_best_degradation),
        "defended_best_degradation": float(evaluation.defended_best_degradation),
        "clean_recall_undefended": float(evaluation.clean_recall_undefended),
        "clean_recall_defended": float(evaluation.clean_recall_defended),
        "execution": evaluation.execution,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    save_attack_result(evaluation.undefended_result, directory / "undefended")
    save_attack_result(evaluation.defended_result, directory / "defended")
    return directory


def load_defense_evaluation(directory: str | Path) -> DefenseEvaluation:
    """Load a defense evaluation saved by :func:`save_defense_evaluation`."""
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    return DefenseEvaluation(
        undefended_result=load_attack_result(directory / "undefended"),
        defended_result=load_attack_result(directory / "defended"),
        undefended_best_degradation=float(meta["undefended_best_degradation"]),
        defended_best_degradation=float(meta["defended_best_degradation"]),
        clean_recall_undefended=float(meta["clean_recall_undefended"]),
        clean_recall_defended=float(meta["clean_recall_defended"]),
        execution=meta.get("execution"),
    )


def save_ensemble_defense_evaluation(
    evaluation: EnsembleDefenseEvaluation, directory: str | Path
) -> Path:
    """Save an ensemble-defense evaluation (fusion damage + attack result)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    meta: dict[str, Any] = {
        "report": "ensemble-defense-evaluation",
        "member_degradations": [
            float(value) for value in evaluation.member_degradations
        ],
        "fused_degradation": float(evaluation.fused_degradation),
        "execution": evaluation.execution,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2))
    save_attack_result(evaluation.attack_result, directory / "attack")
    return directory


def load_ensemble_defense_evaluation(
    directory: str | Path,
) -> EnsembleDefenseEvaluation:
    """Load a report saved by :func:`save_ensemble_defense_evaluation`."""
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    return EnsembleDefenseEvaluation(
        attack_result=load_attack_result(directory / "attack"),
        member_degradations=[
            float(value) for value in meta.get("member_degradations", [])
        ],
        fused_degradation=float(meta["fused_degradation"]),
        execution=meta.get("execution"),
    )
