"""Persistence: saving and loading masks, predictions and attack results.

Attack runs are expensive (the paper's Table II budget is ~10,000 detector
queries per image), so their outcomes need to be stored and reloaded for
later analysis.  Everything is serialised with NumPy ``.npz`` archives for
arrays and JSON for metadata — no extra dependencies.
"""

from repro.io.serialization import (
    load_attack_result,
    load_defense_evaluation,
    load_ensemble_defense_evaluation,
    load_mask,
    load_prediction,
    load_transfer_result,
    prediction_from_dict,
    prediction_to_dict,
    save_attack_result,
    save_defense_evaluation,
    save_ensemble_defense_evaluation,
    save_mask,
    save_prediction,
    save_transfer_result,
)
from repro.io.archive import ExperimentArchive

__all__ = [
    "load_attack_result",
    "load_defense_evaluation",
    "load_ensemble_defense_evaluation",
    "load_transfer_result",
    "save_defense_evaluation",
    "save_ensemble_defense_evaluation",
    "save_transfer_result",
    "load_mask",
    "load_prediction",
    "prediction_from_dict",
    "prediction_to_dict",
    "save_attack_result",
    "save_mask",
    "save_prediction",
    "ExperimentArchive",
]
