"""Scene specifications: which objects sit where in a synthetic image."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from repro.data.templates import KittiClass, ObjectTemplate, default_template
from repro.detection.boxes import BoundingBox, box_intersection_area
from repro.detection.prediction import Prediction


@dataclass(frozen=True)
class ObjectSpec:
    """One object placed in a scene.

    Attributes
    ----------
    class_id:
        The object class.
    x, y:
        Centre of the object in image coordinates (rows, columns).
    scale:
        Size multiplier applied to the template's nominal extent.
    template:
        Optional explicit template; defaults to the class default.
    """

    class_id: KittiClass
    x: float
    y: float
    scale: float = 1.0
    template: Optional[ObjectTemplate] = None

    def resolved_template(self) -> ObjectTemplate:
        """Return the template to draw (explicit or class default)."""
        return self.template if self.template is not None else default_template(self.class_id)

    @property
    def length(self) -> float:
        return self.resolved_template().nominal_length * self.scale

    @property
    def width(self) -> float:
        return self.resolved_template().nominal_width * self.scale

    def to_box(self, score: float = 1.0) -> BoundingBox:
        """Ground-truth bounding box of this object."""
        return BoundingBox(
            cl=int(self.class_id), x=self.x, y=self.y, l=self.length, w=self.width,
            score=score,
        )

    def moved(self, dx: float, dy: float) -> "ObjectSpec":
        """Return a copy of the object translated by ``(dx, dy)``."""
        return replace(self, x=self.x + dx, y=self.y + dy)


@dataclass
class SceneSpec:
    """A full scene: image size, background style and placed objects."""

    image_length: int
    image_width: int
    objects: list[ObjectSpec] = field(default_factory=list)
    background_seed: int = 0
    road_fraction: float = 0.45

    def __post_init__(self) -> None:
        if self.image_length <= 0 or self.image_width <= 0:
            raise ValueError("image dimensions must be positive")
        if not 0.0 <= self.road_fraction <= 1.0:
            raise ValueError("road_fraction must be in [0, 1]")

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.image_length, self.image_width, 3)

    def ground_truth(self) -> Prediction:
        """Ground-truth prediction: one box per placed object."""
        return Prediction([obj.to_box() for obj in self.objects])

    def objects_in_half(self, half: str) -> list[ObjectSpec]:
        """Objects whose centre lies in the left or right half of the image.

        ``half`` is ``"left"`` (columns ``< W/2``) or ``"right"``.
        """
        middle = self.image_width / 2.0
        if half == "left":
            return [obj for obj in self.objects if obj.y < middle]
        if half == "right":
            return [obj for obj in self.objects if obj.y >= middle]
        raise ValueError(f"half must be 'left' or 'right', got {half!r}")

    def with_objects(self, objects: Sequence[ObjectSpec]) -> "SceneSpec":
        """Return a copy of the scene with a different object list."""
        return SceneSpec(
            image_length=self.image_length,
            image_width=self.image_width,
            objects=list(objects),
            background_seed=self.background_seed,
            road_fraction=self.road_fraction,
        )


def random_scene(
    rng: np.random.Generator | int,
    image_length: int = 96,
    image_width: int = 320,
    num_objects: tuple[int, int] = (2, 4),
    classes: Sequence[KittiClass] = (
        KittiClass.CAR,
        KittiClass.PEDESTRIAN,
        KittiClass.CYCLIST,
    ),
    half: Optional[str] = None,
    scale_range: tuple[float, float] = (1.2, 1.8),
    min_separation: float = 12.0,
) -> SceneSpec:
    """Generate a random scene with non-overlapping objects on a road.

    Parameters
    ----------
    rng:
        A NumPy generator or an integer seed.
    num_objects:
        Inclusive (minimum, maximum) number of objects to place.
    half:
        When ``"left"`` or ``"right"``, objects are restricted to that half
        of the image — the protocol used by the paper's figures ("perturb
        the right, observe the left").
    min_separation:
        Minimum distance between object centres.
    """
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    if num_objects[0] < 0 or num_objects[1] < num_objects[0]:
        raise ValueError("num_objects must be a non-decreasing pair of non-negatives")

    count = int(rng.integers(num_objects[0], num_objects[1] + 1))
    scene = SceneSpec(
        image_length=image_length,
        image_width=image_width,
        background_seed=int(rng.integers(0, 2**31 - 1)),
    )

    if half == "left":
        y_low, y_high = 0.15 * image_width, 0.42 * image_width
    elif half == "right":
        y_low, y_high = 0.58 * image_width, 0.85 * image_width
    elif half is None:
        y_low, y_high = 0.12 * image_width, 0.88 * image_width
    else:
        raise ValueError(f"half must be 'left', 'right' or None, got {half!r}")

    placed: list[ObjectSpec] = []
    attempts = 0
    while len(placed) < count and attempts < 200:
        attempts += 1
        class_id = KittiClass(int(rng.choice([int(c) for c in classes])))
        scale = float(rng.uniform(*scale_range))
        template = default_template(class_id)
        half_l = template.nominal_length * scale / 2.0
        half_w = template.nominal_width * scale / 2.0
        # Objects sit in the lower (road) part of the image.
        x_low = max(half_l, image_length * 0.45)
        x_high = image_length - half_l - 1
        if x_high <= x_low:
            x_high = x_low + 1
        x = float(rng.uniform(x_low, x_high))
        y = float(rng.uniform(max(half_w, y_low), min(image_width - half_w - 1, y_high)))
        candidate = ObjectSpec(class_id=class_id, x=x, y=y, scale=scale)
        candidate_box = candidate.to_box()
        separated = all(
            np.hypot(candidate.x - other.x, candidate.y - other.y) >= min_separation
            and box_intersection_area(candidate_box, other.to_box()) == 0.0
            for other in placed
        )
        if separated:
            placed.append(candidate)

    return scene.with_objects(placed)
