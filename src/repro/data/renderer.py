"""Render scene specifications to RGB images.

The rendered scenes intentionally look like simplified road scenes: a sky
gradient at the top, a textured road surface at the bottom, lane markings,
and the objects drawn from their class templates.  Pixel values are floats
in ``[0, 255]``, matching the paper's signed-integer perturbation range of
``[-255, 255]``.
"""

from __future__ import annotations

import numpy as np

from repro.data.scene import SceneSpec


def _render_background(scene: SceneSpec) -> np.ndarray:
    """Sky + road background with mild texture, deterministic per scene seed."""
    length, width = scene.image_length, scene.image_width
    rng = np.random.default_rng(scene.background_seed)
    image = np.empty((length, width, 3), dtype=np.float64)

    horizon = int(length * (1.0 - scene.road_fraction))
    rows = np.arange(length)[:, None]

    # Sky: vertical gradient from light blue to pale.
    sky_mix = np.clip(rows / max(1, horizon), 0.0, 1.0)
    sky_top = np.array([140.0, 170.0, 230.0])
    sky_bottom = np.array([200.0, 215.0, 235.0])
    sky = sky_top[None, None, :] * (1 - sky_mix[..., None]) + sky_bottom[
        None, None, :
    ] * sky_mix[..., None]

    # Road: dark grey with slight vertical gradient.
    road_mix = np.clip((rows - horizon) / max(1, length - horizon), 0.0, 1.0)
    road_far = np.array([110.0, 110.0, 112.0])
    road_near = np.array([70.0, 70.0, 74.0])
    road = road_far[None, None, :] * (1 - road_mix[..., None]) + road_near[
        None, None, :
    ] * road_mix[..., None]

    image[:horizon] = sky[:horizon]
    image[horizon:] = road[horizon:]

    # Lane marking: a dashed light stripe down the middle of the road.
    lane_col = width // 2
    for row in range(horizon, length):
        if (row // 4) % 2 == 0:
            image[row, max(0, lane_col - 1) : lane_col + 1] = [210.0, 210.0, 190.0]

    # Mild background texture so detectors cannot rely on perfectly flat areas.
    image += rng.normal(0.0, 2.0, size=image.shape)
    return np.clip(image, 0.0, 255.0)


def render_scene(scene: SceneSpec, rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Render a :class:`SceneSpec` to an ``L x W x 3`` float image in [0, 255].

    Parameters
    ----------
    rng:
        Optional generator (or seed) for per-object texture jitter.  When
        omitted the scene's background seed is reused, making rendering
        fully deterministic for a given scene.
    """
    if rng is None:
        rng = np.random.default_rng(scene.background_seed + 1)
    elif isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))

    image = _render_background(scene)
    length, width = scene.image_length, scene.image_width

    for obj in scene.objects:
        template = obj.resolved_template()
        patch_l = max(2, int(round(template.nominal_length * obj.scale)))
        patch_w = max(2, int(round(template.nominal_width * obj.scale)))
        patch = template.render_patch(patch_l, patch_w, rng=rng)

        x_min = int(round(obj.x - patch_l / 2.0))
        y_min = int(round(obj.y - patch_w / 2.0))
        x_lo, x_hi = max(0, x_min), min(length, x_min + patch_l)
        y_lo, y_hi = max(0, y_min), min(width, y_min + patch_w)
        if x_hi <= x_lo or y_hi <= y_lo:
            continue
        patch_view = patch[x_lo - x_min : x_hi - x_min, y_lo - y_min : y_hi - y_min]
        image[x_lo:x_hi, y_lo:y_hi] = patch_view

    return np.clip(image, 0.0, 255.0)
