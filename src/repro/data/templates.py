"""Object templates for the synthetic KITTI-like scenes.

Each template describes how one object class is drawn: a base colour, a
texture pattern and the nominal size (length along image rows, width along
image columns).  Classes mirror the KITTI label set used by the paper's
examples: cars, pedestrians (persons) and cyclists, plus vans and trucks for
richer scenes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np


class KittiClass(IntEnum):
    """Object classes used by the synthetic dataset (KITTI-style)."""

    CAR = 0
    PEDESTRIAN = 1
    CYCLIST = 2
    VAN = 3
    TRUCK = 4


#: Human-readable class names, indexed by :class:`KittiClass` value.
CLASS_NAMES: tuple[str, ...] = ("Car", "Pedestrian", "Cyclist", "Van", "Truck")


@dataclass(frozen=True)
class ObjectTemplate:
    """Visual appearance of one object class.

    Attributes
    ----------
    class_id:
        The :class:`KittiClass` this template draws.
    base_color:
        RGB base colour in ``[0, 255]``.
    accent_color:
        RGB accent colour used by the texture pattern.
    nominal_length, nominal_width:
        Default object extent in pixels (rows, columns) before scaling.
    texture:
        Texture pattern name: ``"solid"``, ``"stripes"``, ``"checker"`` or
        ``"gradient"``.
    """

    class_id: KittiClass
    base_color: tuple[float, float, float]
    accent_color: tuple[float, float, float]
    nominal_length: int
    nominal_width: int
    texture: str = "solid"

    def render_patch(
        self, length: int, width: int, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Render the template as an ``length x width x 3`` float patch.

        A small amount of per-pixel jitter is added when ``rng`` is given so
        that differently seeded scenes are not pixel-identical.
        """
        if length <= 0 or width <= 0:
            raise ValueError("patch dimensions must be positive")
        patch = np.empty((length, width, 3), dtype=np.float64)
        base = np.asarray(self.base_color, dtype=np.float64)
        accent = np.asarray(self.accent_color, dtype=np.float64)

        rows = np.arange(length)[:, None]
        cols = np.arange(width)[None, :]
        if self.texture == "solid":
            mask = np.zeros((length, width), dtype=bool)
        elif self.texture == "stripes":
            mask = (cols // max(1, width // 6)) % 2 == 0
            mask = np.broadcast_to(mask, (length, width))
        elif self.texture == "checker":
            mask = ((rows // max(1, length // 4)) + (cols // max(1, width // 4))) % 2 == 0
        elif self.texture == "gradient":
            mix = np.broadcast_to(cols / max(1, width - 1), (length, width))
            patch[:] = base[None, None, :] * (1 - mix[..., None]) + accent[
                None, None, :
            ] * mix[..., None]
            if rng is not None:
                patch += rng.normal(0.0, 3.0, size=patch.shape)
            return np.clip(patch, 0.0, 255.0)
        else:
            raise ValueError(f"unknown texture: {self.texture!r}")

        patch[:] = base[None, None, :]
        patch[mask] = accent
        if rng is not None:
            patch += rng.normal(0.0, 3.0, size=patch.shape)
        return np.clip(patch, 0.0, 255.0)


_DEFAULT_TEMPLATES: dict[KittiClass, ObjectTemplate] = {
    KittiClass.CAR: ObjectTemplate(
        class_id=KittiClass.CAR,
        base_color=(200.0, 40.0, 40.0),
        accent_color=(240.0, 230.0, 230.0),
        nominal_length=18,
        nominal_width=34,
        texture="gradient",
    ),
    KittiClass.PEDESTRIAN: ObjectTemplate(
        class_id=KittiClass.PEDESTRIAN,
        base_color=(40.0, 60.0, 200.0),
        accent_color=(230.0, 200.0, 120.0),
        nominal_length=26,
        nominal_width=10,
        texture="stripes",
    ),
    KittiClass.CYCLIST: ObjectTemplate(
        class_id=KittiClass.CYCLIST,
        base_color=(40.0, 180.0, 70.0),
        accent_color=(20.0, 30.0, 30.0),
        nominal_length=24,
        nominal_width=14,
        texture="checker",
    ),
    KittiClass.VAN: ObjectTemplate(
        class_id=KittiClass.VAN,
        base_color=(170.0, 170.0, 180.0),
        accent_color=(90.0, 90.0, 110.0),
        nominal_length=22,
        nominal_width=38,
        texture="solid",
    ),
    KittiClass.TRUCK: ObjectTemplate(
        class_id=KittiClass.TRUCK,
        base_color=(180.0, 120.0, 40.0),
        accent_color=(230.0, 200.0, 90.0),
        nominal_length=28,
        nominal_width=46,
        texture="checker",
    ),
}


def default_template(class_id: KittiClass | int) -> ObjectTemplate:
    """Return the default template for a class."""
    return _DEFAULT_TEMPLATES[KittiClass(class_id)]


def template_bank() -> dict[KittiClass, ObjectTemplate]:
    """Return a copy of the full default template bank."""
    return dict(_DEFAULT_TEMPLATES)
