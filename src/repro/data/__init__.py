"""Synthetic KITTI-like data substrate.

The paper evaluates on the KITTI vision benchmark.  This repository has no
access to the real dataset, so this package provides a drop-in substitute:

* :mod:`repro.data.templates` — textured object templates (car, pedestrian,
  cyclist, van, truck) with per-class colour statistics,
* :mod:`repro.data.scene` — scene specifications placing objects on a road,
* :mod:`repro.data.renderer` — rendering specifications to RGB images,
* :mod:`repro.data.dataset` — seeded dataset generators mirroring the
  paper's "16 images tested on each model" protocol,
* :mod:`repro.data.sequences` — temporal sequences of moving objects for the
  paper's across-frames attack extension,
* :mod:`repro.data.kitti` — readers/writers for KITTI-format label files so
  the real dataset can be dropped in,
* :mod:`repro.data.noise` — classic noise models (Gaussian, salt & pepper)
  used as related-work baselines.
"""

from repro.data.templates import (
    CLASS_NAMES,
    KittiClass,
    ObjectTemplate,
    default_template,
    template_bank,
)
from repro.data.scene import ObjectSpec, SceneSpec, random_scene
from repro.data.renderer import render_scene
from repro.data.dataset import SyntheticDataset, SceneSample, generate_dataset
from repro.data.sequences import SceneSequence, generate_sequence
from repro.data.kitti import KittiLabel, parse_kitti_label, write_kitti_label
from repro.data.noise import add_gaussian_noise, add_salt_and_pepper_noise

__all__ = [
    "CLASS_NAMES",
    "KittiClass",
    "ObjectTemplate",
    "default_template",
    "template_bank",
    "ObjectSpec",
    "SceneSpec",
    "random_scene",
    "render_scene",
    "SyntheticDataset",
    "SceneSample",
    "generate_dataset",
    "SceneSequence",
    "generate_sequence",
    "KittiLabel",
    "parse_kitti_label",
    "write_kitti_label",
    "add_gaussian_noise",
    "add_salt_and_pepper_noise",
]
