"""Temporal sequences of scenes for the across-frames attack extension.

Section IV-B of the paper notes that a single filter mask can be optimised
to stay effective across a *sequence* of images (temporally stable attack).
:func:`generate_sequence` produces such a sequence by moving the objects of
a base scene along per-object velocities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.data.renderer import render_scene
from repro.data.scene import ObjectSpec, SceneSpec, random_scene
from repro.data.templates import KittiClass
from repro.detection.prediction import Prediction
from repro.nn.incremental import BBox, EMPTY_BBOX, bbox_union


def _object_footprint(
    obj: ObjectSpec, image_length: int, image_width: int
) -> tuple[tuple[int, int, int, int], BBox]:
    """One object's integer draw placement and its clipped pixel rect.

    Mirrors :func:`repro.data.renderer.render_scene`'s patch arithmetic
    exactly (rounded nominal extent, centre-rounded placement, half-open
    clip to the image), so two objects with equal placements draw
    bit-identical pixels when the texture stream matches.  The placement
    ``(x_min, y_min, patch_l, patch_w)`` is compared *unclipped*: a
    partially off-image object shifts which rows of its patch are visible
    even when the clipped rect is unchanged.
    """
    template = obj.resolved_template()
    patch_l = max(2, int(round(template.nominal_length * obj.scale)))
    patch_w = max(2, int(round(template.nominal_width * obj.scale)))
    x_min = int(round(obj.x - patch_l / 2.0))
    y_min = int(round(obj.y - patch_w / 2.0))
    x_lo, x_hi = max(0, x_min), min(image_length, x_min + patch_l)
    y_lo, y_hi = max(0, y_min), min(image_width, y_min + patch_w)
    if x_hi <= x_lo or y_hi <= y_lo:
        rect = EMPTY_BBOX
    else:
        rect = (x_lo, x_hi, y_lo, y_hi)
    return (x_min, y_min, patch_l, patch_w), rect


def moved_objects_bbox(previous: SceneSpec, current: SceneSpec) -> BBox | None:
    """Bbox guaranteed to contain every pixel differing between two frames.

    The inter-frame dirty bound of a generated sequence, computed from the
    scene specs alone (no pixels touched): the union over moved objects of
    their old and new clipped footprint rects.  Valid because consecutive
    frames of :func:`generate_sequence` share the background (same seed,
    dims and road fraction) and per-object textures (the render RNG draws
    one size-dependent sample per object in list order, and sizes are
    frame-invariant) — so pixels can only change where a moved object was
    or now is.  Returns :data:`EMPTY_BBOX` for identical placements and
    ``None`` (unknown — scan the whole frame) whenever the two scenes are
    not recognisably the same scene in motion: differing dims, background,
    object count, or any object's class/scale/template.
    """
    if (
        previous.image_length != current.image_length
        or previous.image_width != current.image_width
        or previous.background_seed != current.background_seed
        or previous.road_fraction != current.road_fraction
        or len(previous.objects) != len(current.objects)
    ):
        return None
    length, width = current.image_length, current.image_width
    union: BBox | None = EMPTY_BBOX
    for prev_obj, curr_obj in zip(previous.objects, current.objects):
        if (
            prev_obj.class_id != curr_obj.class_id
            or prev_obj.scale != curr_obj.scale
            or prev_obj.template is not curr_obj.template
        ):
            return None
        prev_place, prev_rect = _object_footprint(prev_obj, length, width)
        curr_place, curr_rect = _object_footprint(curr_obj, length, width)
        if prev_place != curr_place:
            union = bbox_union(union, bbox_union(prev_rect, curr_rect))
    return union


@dataclass
class SceneSequence:
    """A temporally ordered list of rendered frames with ground truth."""

    scenes: list[SceneSpec] = field(default_factory=list)
    images: list[np.ndarray] = field(default_factory=list)
    seed: int = 0
    _ground_truths: Optional[list[Prediction]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.images)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.images)

    def __getitem__(self, index: "int | slice") -> "np.ndarray | SceneSequence":
        """``seq[i]`` is frame ``i`` (like iteration); ``seq[a:b]`` is a
        sub-sequence carrying the matching scenes and the same seed."""
        if isinstance(index, slice):
            return SceneSequence(
                scenes=self.scenes[index],
                images=self.images[index],
                seed=self.seed,
            )
        return self.images[index]

    def frame(self, index: int) -> np.ndarray:
        return self.images[index]

    def ground_truth(self, index: int) -> Prediction:
        return self.ground_truths[index]

    @property
    def ground_truths(self) -> list[Prediction]:
        """Per-frame ground truths, computed once and cached.

        Scenes are immutable in practice (generated once, never edited), so
        the per-access recompute the property used to do was pure waste —
        track-level objectives read the ground truth of every frame for
        every population.
        """
        if self._ground_truths is None:
            self._ground_truths = [scene.ground_truth() for scene in self.scenes]
        return self._ground_truths

    def dirty_bounds(self) -> list[BBox | None]:
        """Per-frame inter-frame dirty bounds from consecutive scene specs.

        Entry 0 is ``None`` (no predecessor — the first frame is always a
        dense build); entry t bounds every pixel where frame t differs from
        frame t−1 (see :func:`moved_objects_bbox`).
        """
        return [None] + [
            moved_objects_bbox(self.scenes[index - 1], self.scenes[index])
            for index in range(1, len(self.scenes))
        ]


def generate_sequence(
    num_frames: int = 5,
    seed: int = 0,
    image_length: int = 96,
    image_width: int = 320,
    num_objects: tuple[int, int] = (2, 3),
    classes: Sequence[KittiClass] = (KittiClass.CAR, KittiClass.CYCLIST),
    half: Optional[str] = None,
    max_speed: float = 4.0,
) -> SceneSequence:
    """Generate a short sequence where objects move with constant velocity.

    Objects drift by at most ``max_speed`` pixels per frame; objects that
    would leave the image are clamped to stay fully visible.
    """
    if num_frames <= 0:
        raise ValueError("num_frames must be positive")
    rng = np.random.default_rng(seed)
    base = random_scene(
        rng,
        image_length=image_length,
        image_width=image_width,
        num_objects=num_objects,
        classes=classes,
        half=half,
    )
    velocities = [
        (float(rng.uniform(-max_speed / 2, max_speed / 2)), float(rng.uniform(-max_speed, max_speed)))
        for _ in base.objects
    ]

    scenes: list[SceneSpec] = []
    images: list[np.ndarray] = []
    for frame_index in range(num_frames):
        moved: list[ObjectSpec] = []
        for obj, (vx, vy) in zip(base.objects, velocities):
            new_x = obj.x + vx * frame_index
            new_y = obj.y + vy * frame_index
            half_l, half_w = obj.length / 2.0, obj.width / 2.0
            new_x = float(np.clip(new_x, half_l, image_length - half_l - 1))
            new_y = float(np.clip(new_y, half_w, image_width - half_w - 1))
            moved.append(ObjectSpec(obj.class_id, new_x, new_y, obj.scale, obj.template))
        scene = base.with_objects(moved)
        scenes.append(scene)
        images.append(render_scene(scene))
    return SceneSequence(scenes=scenes, images=images, seed=seed)
