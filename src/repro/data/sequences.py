"""Temporal sequences of scenes for the across-frames attack extension.

Section IV-B of the paper notes that a single filter mask can be optimised
to stay effective across a *sequence* of images (temporally stable attack).
:func:`generate_sequence` produces such a sequence by moving the objects of
a base scene along per-object velocities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.data.renderer import render_scene
from repro.data.scene import ObjectSpec, SceneSpec, random_scene
from repro.data.templates import KittiClass
from repro.detection.prediction import Prediction


@dataclass
class SceneSequence:
    """A temporally ordered list of rendered frames with ground truth."""

    scenes: list[SceneSpec] = field(default_factory=list)
    images: list[np.ndarray] = field(default_factory=list)
    seed: int = 0

    def __len__(self) -> int:
        return len(self.images)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.images)

    def frame(self, index: int) -> np.ndarray:
        return self.images[index]

    def ground_truth(self, index: int) -> Prediction:
        return self.scenes[index].ground_truth()

    @property
    def ground_truths(self) -> list[Prediction]:
        return [scene.ground_truth() for scene in self.scenes]


def generate_sequence(
    num_frames: int = 5,
    seed: int = 0,
    image_length: int = 96,
    image_width: int = 320,
    num_objects: tuple[int, int] = (2, 3),
    classes: Sequence[KittiClass] = (KittiClass.CAR, KittiClass.CYCLIST),
    half: Optional[str] = None,
    max_speed: float = 4.0,
) -> SceneSequence:
    """Generate a short sequence where objects move with constant velocity.

    Objects drift by at most ``max_speed`` pixels per frame; objects that
    would leave the image are clamped to stay fully visible.
    """
    if num_frames <= 0:
        raise ValueError("num_frames must be positive")
    rng = np.random.default_rng(seed)
    base = random_scene(
        rng,
        image_length=image_length,
        image_width=image_width,
        num_objects=num_objects,
        classes=classes,
        half=half,
    )
    velocities = [
        (float(rng.uniform(-max_speed / 2, max_speed / 2)), float(rng.uniform(-max_speed, max_speed)))
        for _ in base.objects
    ]

    scenes: list[SceneSpec] = []
    images: list[np.ndarray] = []
    for frame_index in range(num_frames):
        moved: list[ObjectSpec] = []
        for obj, (vx, vy) in zip(base.objects, velocities):
            new_x = obj.x + vx * frame_index
            new_y = obj.y + vy * frame_index
            half_l, half_w = obj.length / 2.0, obj.width / 2.0
            new_x = float(np.clip(new_x, half_l, image_length - half_l - 1))
            new_y = float(np.clip(new_y, half_w, image_width - half_w - 1))
            moved.append(ObjectSpec(obj.class_id, new_x, new_y, obj.scale, obj.template))
        scene = base.with_objects(moved)
        scenes.append(scene)
        images.append(render_scene(scene))
    return SceneSequence(scenes=scenes, images=images, seed=seed)
