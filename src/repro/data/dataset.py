"""Dataset generation: seeded collections of rendered scenes.

The paper's protocol feeds 16 KITTI images to each of 25 YOLO and 25 DETR
models (Table I).  :func:`generate_dataset` builds the synthetic analogue: a
seeded, reproducible collection of rendered scenes with ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.data.renderer import render_scene
from repro.data.scene import SceneSpec, random_scene
from repro.data.templates import KittiClass
from repro.detection.prediction import Prediction


@dataclass
class SceneSample:
    """One dataset element: the scene spec, its rendering and ground truth."""

    scene: SceneSpec
    image: np.ndarray
    ground_truth: Prediction
    index: int = 0

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.image.shape  # type: ignore[return-value]


@dataclass
class SyntheticDataset:
    """A reproducible collection of :class:`SceneSample` objects."""

    samples: list[SceneSample] = field(default_factory=list)
    seed: int = 0

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> SceneSample:
        return self.samples[index]

    def __iter__(self) -> Iterator[SceneSample]:
        return iter(self.samples)

    @property
    def images(self) -> list[np.ndarray]:
        return [sample.image for sample in self.samples]

    @property
    def ground_truths(self) -> list[Prediction]:
        return [sample.ground_truth for sample in self.samples]

    def subset(self, indices: Sequence[int]) -> "SyntheticDataset":
        """Return a dataset containing only the selected samples."""
        return SyntheticDataset(
            samples=[self.samples[i] for i in indices], seed=self.seed
        )


def generate_dataset(
    num_images: int = 16,
    seed: int = 0,
    image_length: int = 96,
    image_width: int = 320,
    num_objects: tuple[int, int] = (2, 4),
    classes: Sequence[KittiClass] = (
        KittiClass.CAR,
        KittiClass.PEDESTRIAN,
        KittiClass.CYCLIST,
    ),
    half: Optional[str] = None,
) -> SyntheticDataset:
    """Generate ``num_images`` rendered scenes with ground truth.

    Parameters
    ----------
    half:
        When set to ``"left"`` or ``"right"``, all objects are confined to
        that half of the image.  The paper's qualitative figures restrict
        perturbations to the right half and observe the (object-bearing)
        left half; passing ``half="left"`` reproduces that object layout.
    """
    if num_images < 0:
        raise ValueError("num_images must be non-negative")
    rng = np.random.default_rng(seed)
    samples: list[SceneSample] = []
    for index in range(num_images):
        scene = random_scene(
            rng,
            image_length=image_length,
            image_width=image_width,
            num_objects=num_objects,
            classes=classes,
            half=half,
        )
        image = render_scene(scene)
        samples.append(
            SceneSample(
                scene=scene,
                image=image,
                ground_truth=scene.ground_truth(),
                index=index,
            )
        )
    return SyntheticDataset(samples=samples, seed=seed)
