"""KITTI label-file I/O.

The real evaluation of the paper uses the KITTI object-detection benchmark.
This module implements the KITTI label text format (one object per line with
type, truncation, occlusion, alpha, 2-D bbox, 3-D dimensions, location and
rotation) so that real KITTI annotations can be loaded into the same
:class:`~repro.detection.prediction.Prediction` containers used by the
synthetic data, and synthetic ground truth can be exported for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.data.templates import CLASS_NAMES, KittiClass
from repro.detection.boxes import BoundingBox
from repro.detection.prediction import Prediction

#: KITTI type strings that map onto our class ids; everything else becomes
#: "DontCare" on write and is skipped on read unless ``keep_dontcare``.
_TYPE_TO_CLASS: dict[str, int] = {
    "Car": int(KittiClass.CAR),
    "Pedestrian": int(KittiClass.PEDESTRIAN),
    "Person_sitting": int(KittiClass.PEDESTRIAN),
    "Cyclist": int(KittiClass.CYCLIST),
    "Van": int(KittiClass.VAN),
    "Truck": int(KittiClass.TRUCK),
}


@dataclass(frozen=True)
class KittiLabel:
    """One line of a KITTI label file (2-D fields only are used here)."""

    object_type: str
    truncation: float
    occlusion: int
    alpha: float
    bbox_left: float
    bbox_top: float
    bbox_right: float
    bbox_bottom: float
    height: float = -1.0
    width: float = -1.0
    length: float = -1.0
    loc_x: float = -1000.0
    loc_y: float = -1000.0
    loc_z: float = -1000.0
    rotation_y: float = -10.0
    score: float = 1.0

    def to_box(self) -> BoundingBox | None:
        """Convert to a :class:`BoundingBox`; None for unknown/DontCare types.

        KITTI bounding boxes are given as (left, top, right, bottom) in
        (column, row) pixel coordinates; our convention is rows = x and
        columns = y.
        """
        class_id = _TYPE_TO_CLASS.get(self.object_type)
        if class_id is None:
            return None
        return BoundingBox.from_corners(
            cl=class_id,
            x_min=self.bbox_top,
            y_min=self.bbox_left,
            x_max=self.bbox_bottom,
            y_max=self.bbox_right,
            score=self.score,
        )

    def to_line(self) -> str:
        """Serialise back to the KITTI text format."""
        fields = [
            self.object_type,
            f"{self.truncation:.2f}",
            str(self.occlusion),
            f"{self.alpha:.2f}",
            f"{self.bbox_left:.2f}",
            f"{self.bbox_top:.2f}",
            f"{self.bbox_right:.2f}",
            f"{self.bbox_bottom:.2f}",
            f"{self.height:.2f}",
            f"{self.width:.2f}",
            f"{self.length:.2f}",
            f"{self.loc_x:.2f}",
            f"{self.loc_y:.2f}",
            f"{self.loc_z:.2f}",
            f"{self.rotation_y:.2f}",
        ]
        return " ".join(fields)


def parse_kitti_line(line: str) -> KittiLabel:
    """Parse one line of a KITTI label file."""
    parts = line.split()
    if len(parts) < 15:
        raise ValueError(f"KITTI label line has {len(parts)} fields, expected >= 15")
    return KittiLabel(
        object_type=parts[0],
        truncation=float(parts[1]),
        occlusion=int(float(parts[2])),
        alpha=float(parts[3]),
        bbox_left=float(parts[4]),
        bbox_top=float(parts[5]),
        bbox_right=float(parts[6]),
        bbox_bottom=float(parts[7]),
        height=float(parts[8]),
        width=float(parts[9]),
        length=float(parts[10]),
        loc_x=float(parts[11]),
        loc_y=float(parts[12]),
        loc_z=float(parts[13]),
        rotation_y=float(parts[14]),
        score=float(parts[15]) if len(parts) > 15 else 1.0,
    )


def parse_kitti_label(
    source: str | Path | Iterable[str], keep_dontcare: bool = False
) -> Prediction:
    """Read a KITTI label file (or iterable of lines) into a Prediction."""
    if isinstance(source, (str, Path)) and Path(source).exists():
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    elif isinstance(source, str):
        lines = source.splitlines()
    else:
        lines = list(source)  # type: ignore[arg-type]

    boxes: list[BoundingBox] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        label = parse_kitti_line(line)
        box = label.to_box()
        if box is None:
            if keep_dontcare:
                continue
            continue
        boxes.append(box)
    return Prediction(boxes)


def boxes_to_kitti_labels(boxes: Sequence[BoundingBox] | Prediction) -> list[KittiLabel]:
    """Convert boxes back into KITTI label records."""
    if isinstance(boxes, Prediction):
        boxes = boxes.valid_boxes
    labels: list[KittiLabel] = []
    for box in boxes:
        if not box.is_valid:
            continue
        if 0 <= box.cl < len(CLASS_NAMES):
            type_name = CLASS_NAMES[box.cl]
        else:
            type_name = "DontCare"
        labels.append(
            KittiLabel(
                object_type=type_name,
                truncation=0.0,
                occlusion=0,
                alpha=0.0,
                bbox_left=box.y_min,
                bbox_top=box.x_min,
                bbox_right=box.y_max,
                bbox_bottom=box.x_max,
                score=box.score,
            )
        )
    return labels


def write_kitti_label(
    boxes: Sequence[BoundingBox] | Prediction, path: str | Path
) -> None:
    """Write boxes to a KITTI-format label file."""
    labels = boxes_to_kitti_labels(boxes)
    with open(path, "w", encoding="utf-8") as handle:
        for label in labels:
            handle.write(label.to_line() + "\n")
