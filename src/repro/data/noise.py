"""Classic image-noise models used as related-work baselines.

The related-work section of the paper cites random-noise robustness testing
(Gaussian, salt-and-pepper).  These helpers are used by the baseline attacks
and by the population initialisation of the genetic algorithm ("upon these
masks various noise types of digital image processing are applied").
"""

from __future__ import annotations

import numpy as np


def add_gaussian_noise(
    image: np.ndarray,
    sigma: float = 10.0,
    rng: np.random.Generator | int | None = None,
    clip: bool = True,
) -> np.ndarray:
    """Return a copy of ``image`` with i.i.d. Gaussian noise added."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if rng is None or isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(rng if rng is not None else 0)
    noisy = image.astype(np.float64) + rng.normal(0.0, sigma, size=image.shape)
    if clip:
        noisy = np.clip(noisy, 0.0, 255.0)
    return noisy


def add_salt_and_pepper_noise(
    image: np.ndarray,
    amount: float = 0.01,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Return a copy of ``image`` with salt (255) and pepper (0) pixels.

    ``amount`` is the fraction of pixels affected; half become salt, half
    pepper.  All RGB channels of an affected pixel are set together.
    """
    if not 0.0 <= amount <= 1.0:
        raise ValueError("amount must be in [0, 1]")
    if rng is None or isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(rng if rng is not None else 0)
    noisy = image.astype(np.float64).copy()
    length, width = image.shape[:2]
    num_pixels = int(round(amount * length * width))
    if num_pixels == 0:
        return noisy
    flat_indices = rng.choice(length * width, size=num_pixels, replace=False)
    rows, cols = np.unravel_index(flat_indices, (length, width))
    half = num_pixels // 2
    noisy[rows[:half], cols[:half]] = 255.0
    noisy[rows[half:], cols[half:]] = 0.0
    return noisy


def gaussian_mask(
    shape: tuple[int, int, int],
    sigma: float,
    rng: np.random.Generator,
    max_value: float = 255.0,
) -> np.ndarray:
    """A Gaussian-distributed signed perturbation mask clipped to ±``max_value``."""
    mask = rng.normal(0.0, sigma, size=shape)
    return np.clip(mask, -max_value, max_value)


def salt_and_pepper_mask(
    shape: tuple[int, int, int],
    amount: float,
    rng: np.random.Generator,
    max_value: float = 255.0,
) -> np.ndarray:
    """A sparse signed mask: isolated pixels pushed to ±``max_value``."""
    if not 0.0 <= amount <= 1.0:
        raise ValueError("amount must be in [0, 1]")
    mask = np.zeros(shape, dtype=np.float64)
    length, width = shape[0], shape[1]
    num_pixels = int(round(amount * length * width))
    if num_pixels == 0:
        return mask
    flat_indices = rng.choice(length * width, size=num_pixels, replace=False)
    rows, cols = np.unravel_index(flat_indices, (length, width))
    signs = rng.choice([-1.0, 1.0], size=num_pixels)
    mask[rows, cols] = signs[:, None] * max_value
    return mask
