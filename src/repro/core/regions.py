"""Spatial constraints on where a filter mask may perturb.

The paper's evaluation "adds a restriction where the perturbations are only
applied to the right-hand side of the images ... by forcing filters to have
zeros in the left half".  A :class:`Region` encodes such a restriction as a
boolean pixel mask plus a projection that zeroes the mask outside the
allowed region.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


class Region(abc.ABC):
    """Abstract perturbable region of an image."""

    @abc.abstractmethod
    def pixel_mask(self, image_length: int, image_width: int) -> np.ndarray:
        """Boolean array (L, W): True where perturbation is allowed."""

    def project(self, mask: np.ndarray) -> np.ndarray:
        """Zero the perturbation outside the allowed region."""
        mask = np.asarray(mask, dtype=np.float64)
        allowed = self.pixel_mask(mask.shape[0], mask.shape[1])
        projected = mask.copy()
        projected[~allowed] = 0.0
        return projected

    def allowed_fraction(self, image_length: int, image_width: int) -> float:
        """Fraction of pixels where perturbation is allowed."""
        allowed = self.pixel_mask(image_length, image_width)
        return float(allowed.mean())


@dataclass(frozen=True)
class FullImageRegion(Region):
    """No restriction: the whole image may be perturbed."""

    def pixel_mask(self, image_length: int, image_width: int) -> np.ndarray:
        return np.ones((image_length, image_width), dtype=bool)


@dataclass(frozen=True)
class HalfImageRegion(Region):
    """Only the left or right half of the image may be perturbed.

    ``half="right"`` reproduces the paper's evaluation protocol (objects on
    the left stay untouched; errors appearing there are butterfly effects).
    """

    half: str = "right"

    def __post_init__(self) -> None:
        if self.half not in ("left", "right"):
            raise ValueError(f"half must be 'left' or 'right', got {self.half!r}")

    def pixel_mask(self, image_length: int, image_width: int) -> np.ndarray:
        mask = np.zeros((image_length, image_width), dtype=bool)
        middle = image_width // 2
        if self.half == "right":
            mask[:, middle:] = True
        else:
            mask[:, :middle] = True
        return mask


@dataclass(frozen=True)
class RectangleRegion(Region):
    """An axis-aligned rectangular window that may be perturbed.

    Coordinates follow the repository convention: ``x`` spans image rows
    (length) and ``y`` spans image columns (width).  The bounds are
    half-open pixel indices.
    """

    x_min: int
    y_min: int
    x_max: int
    y_max: int

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ValueError("rectangle bounds are empty or inverted")

    def pixel_mask(self, image_length: int, image_width: int) -> np.ndarray:
        mask = np.zeros((image_length, image_width), dtype=bool)
        x_lo, x_hi = max(0, self.x_min), min(image_length, self.x_max)
        y_lo, y_hi = max(0, self.y_min), min(image_width, self.y_max)
        if x_hi > x_lo and y_hi > y_lo:
            mask[x_lo:x_hi, y_lo:y_hi] = True
        return mask


def region_from_name(name: str) -> Region:
    """Build a region from a short name: ``"full"``, ``"left"`` or ``"right"``."""
    lowered = name.lower()
    if lowered in ("full", "all", "everywhere"):
        return FullImageRegion()
    if lowered in ("left", "left_half"):
        return HalfImageRegion("left")
    if lowered in ("right", "right_half"):
        return HalfImageRegion("right")
    raise ValueError(f"unknown region name: {name!r}")
