"""Attack configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.regions import FullImageRegion, Region
from repro.nsga.algorithm import NSGAConfig


@dataclass(frozen=True)
class AttackConfig:
    """Configuration of a butterfly-effect attack run.

    Attributes
    ----------
    nsga:
        NSGA-II parametrisation (the paper's Table II by default).
    region:
        Spatial constraint on the perturbation (paper: right half only).
    epsilon:
        Buffer ``ϵ`` around bounding boxes used by Algorithm 2.
    round_masks:
        Round filter masks to integer values (the paper encodes masks as
        signed integers in ``[-255, 255]``).
    """

    nsga: NSGAConfig = field(default_factory=NSGAConfig)
    region: Region = field(default_factory=FullImageRegion)
    epsilon: float = 2.0
    round_masks: bool = True

    @staticmethod
    def paper_defaults(region: Region | None = None, seed: int = 0) -> "AttackConfig":
        """Table II parametrisation; optionally with a perturbation region."""
        return AttackConfig(
            nsga=NSGAConfig.paper_defaults(seed=seed),
            region=region if region is not None else FullImageRegion(),
        )

    @staticmethod
    def fast(
        region: Region | None = None,
        seed: int = 0,
        num_iterations: int = 10,
        population_size: int = 16,
    ) -> "AttackConfig":
        """A reduced configuration for tests, examples and CI benchmarks.

        The search dynamics are identical to the paper's; only the budget
        (population and generations) is smaller.
        """
        from repro.nsga.mutation import MutationConfig

        return AttackConfig(
            nsga=NSGAConfig(
                num_iterations=num_iterations,
                population_size=population_size,
                crossover_probability=0.5,
                mutation=MutationConfig(probability=0.45, window_fraction=0.01),
                seed=seed,
            ),
            region=region if region is not None else FullImageRegion(),
        )
