"""Attack configuration."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.regions import FullImageRegion, Region
from repro.nsga.algorithm import NSGAConfig


def default_use_activation_cache() -> bool:
    """Default for every ``use_activation_cache`` switch in the attack stack.

    The ``REPRO_ACTIVATION_CACHE`` environment variable (``0`` disables)
    lets the benchmark/CI A/B jobs run the whole suite with and without the
    incremental path without touching every call site; ``AttackConfig``,
    ``ButterflyObjectives`` and ``EnsembleObjectives`` all default through
    this function.  Both paths are bit-identical, so this only changes
    speed.
    """
    return os.environ.get("REPRO_ACTIVATION_CACHE", "1") != "0"


def default_use_delta_reuse() -> bool:
    """Default for every ``use_delta_reuse`` switch in the attack stack.

    The ``REPRO_DELTA_REUSE`` environment variable (``0`` disables) lets
    the benchmark/CI A/B jobs run the whole suite with and without the
    cross-generation delta-reuse path without touching every call site;
    ``AttackConfig`` and ``ButterflyObjectives`` default through this
    function.  Both paths are bit-identical, so this only changes speed.
    """
    return os.environ.get("REPRO_DELTA_REUSE", "1") != "0"


@dataclass(frozen=True)
class AttackConfig:
    """Configuration of a butterfly-effect attack run.

    Attributes
    ----------
    nsga:
        NSGA-II parametrisation (the paper's Table II by default).
    region:
        Spatial constraint on the perturbation (paper: right half only).
    epsilon:
        Buffer ``ϵ`` around bounding boxes used by Algorithm 2.
    round_masks:
        Round filter masks to integer values (the paper encodes masks as
        signed integers in ``[-255, 255]``).
    use_activation_cache:
        Cache the clean scene's activations and evaluate masks through the
        detectors' incremental (dirty-region) path where supported.
        Bit-identical to the dense path; only changes speed.  Defaults to
        on unless ``REPRO_ACTIVATION_CACHE=0`` is set.
    activation_cache_size:
        Entry cap of the per-sweep :class:`~repro.detectors.
        activation_cache.ActivationCacheStore` (one entry per cached
        ``(detector, scene)`` pair) used by the experiment runner.
    sparse_init_fraction:
        Fraction of the NSGA-II initial population drawn as *sparse*
        patch-confined masks instead of dense Gaussian ones, so short
        attacks reach the incremental inference path's sparse-mask sweet
        spot from generation zero.  ``0.0`` (the default) keeps the paper's
        dense initialisation bit-exactly — the search dynamics only change
        when this is explicitly enabled.
    use_delta_reuse:
        Memoise each evaluated mask's spliced activations and re-splice
        only the child-vs-parent diff for offspring whose ancestor is still
        cached (cross-generation delta reuse).  Bit-identical to the
        clean-splice path; only changes speed.  Defaults to on unless
        ``REPRO_DELTA_REUSE=0`` is set.
    delta_store_size:
        LRU entry cap of the per-scene delta-activation store feeding the
        cross-generation reuse path.
    fast_search:
        Run the NSGA-II search phase at an approximate evaluation fidelity
        and re-score the final population bit-exactly (two-phase
        bounded-error search).  The returned Pareto front carries exact
        objective vectors by construction; only *which* genomes survive the
        search can differ from an all-exact run.  Default off — the default
        attack path is bit- and RNG-identical to previous releases.
    search_fidelity:
        Named fidelity preset for the search phase (see
        ``repro.detectors.fidelity.FIDELITY_PRESETS``): ``"windowed"``
        (banded attention refresh), ``"float32"``, ``"turbo"`` (both) or
        ``"surrogate"`` (downscaled scene).  Only used when ``fast_search``
        is on.
    rescore_every:
        When positive and ``fast_search`` is on, additionally re-score the
        surviving population at exact fidelity every this-many generations
        (periodic drift correction); 0 re-scores only at the end.
    anneal_final_window:
        When set, anneal the mutation ``window_fraction`` from its base
        value down (or up) to this value across the run — dense exploration
        early, sparse refinement late.  ``None`` (default) keeps the
        constant paper schedule and the exact historical RNG draw stream.
    anneal_shape:
        ``"log"`` (geometric, default) or ``"linear"`` interpolation for
        the annealing schedule.
    """

    nsga: NSGAConfig = field(default_factory=NSGAConfig)
    region: Region = field(default_factory=FullImageRegion)
    epsilon: float = 2.0
    round_masks: bool = True
    use_activation_cache: bool = field(default_factory=default_use_activation_cache)
    activation_cache_size: int = 4
    sparse_init_fraction: float = 0.0
    use_delta_reuse: bool = field(default_factory=default_use_delta_reuse)
    delta_store_size: int = 256
    fast_search: bool = False
    search_fidelity: str = "windowed"
    rescore_every: int = 0
    anneal_final_window: float | None = None
    anneal_shape: str = "log"

    def __post_init__(self) -> None:
        if not 0.0 <= self.sparse_init_fraction <= 1.0:
            raise ValueError("sparse_init_fraction must be in [0, 1]")
        if self.activation_cache_size < 1:
            raise ValueError("activation_cache_size must be at least 1")
        if self.delta_store_size < 1:
            raise ValueError("delta_store_size must be at least 1")
        if self.rescore_every < 0:
            raise ValueError("rescore_every must be non-negative")
        from repro.detectors.fidelity import resolve_fidelity

        resolve_fidelity(self.search_fidelity)
        if self.anneal_final_window is not None:
            from repro.nsga.mutation import IntensityAnnealing

            IntensityAnnealing(
                final_window_fraction=self.anneal_final_window,
                shape=self.anneal_shape,
            )

    @staticmethod
    def paper_defaults(region: Region | None = None, seed: int = 0) -> "AttackConfig":
        """Table II parametrisation; optionally with a perturbation region."""
        return AttackConfig(
            nsga=NSGAConfig.paper_defaults(seed=seed),
            region=region if region is not None else FullImageRegion(),
        )

    @staticmethod
    def fast(
        region: Region | None = None,
        seed: int = 0,
        num_iterations: int = 10,
        population_size: int = 16,
    ) -> "AttackConfig":
        """A reduced configuration for tests, examples and CI benchmarks.

        The search dynamics are identical to the paper's; only the budget
        (population and generations) is smaller.
        """
        from repro.nsga.mutation import MutationConfig

        return AttackConfig(
            nsga=NSGAConfig(
                num_iterations=num_iterations,
                population_size=population_size,
                crossover_probability=0.5,
                mutation=MutationConfig(probability=0.45, window_fraction=0.01),
                seed=seed,
            ),
            region=region if region is not None else FullImageRegion(),
        )
