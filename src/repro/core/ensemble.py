"""Ensemble objectives (Section IV-B, Equations 1–3).

The same filter mask is applied to all ``K`` detectors of an ensemble:

* the intensity objective is identical for every member (Eq. 1),
* the degradation objective is the average of the members' obj_degrad
  (Eq. 2),
* the distance objective is the average of the members' obj_dist (Eq. 3).

:class:`EnsembleObjectives` is a drop-in replacement for
:class:`~repro.core.objectives.ButterflyObjectives`: the
:class:`~repro.core.attack.ButterflyAttack` orchestrator can attack an
ensemble by constructing an :class:`EnsembleAttack` instead.  Like the
single-detector evaluator it exposes a batched ``evaluate_population``
fast path (one stacked ``predict_batch`` pass per member) that is
bit-identical to evaluating mask by mask.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import AttackConfig, default_use_activation_cache
from repro.core.masks import FilterMask, apply_mask
from repro.core.objectives import ButterflyObjectives
from repro.core.results import AttackResult, ParetoSolution
from repro.detection.errors import classify_transitions
from repro.detectors.activation_cache import ActivationCacheStore
from repro.detectors.base import Detector
from repro.detectors.ensemble import DetectorEnsemble
from repro.nn.incremental import BBox, mask_nonzero_bbox
from repro.nsga.algorithm import NSGAII


@dataclass
class EnsembleObjectives:
    """The three ensemble objectives of Equations 1–3.

    One :class:`ButterflyObjectives` evaluator is built per member so that
    each member's clean prediction and distance matrix are cached; the
    ensemble objective vector averages the members' degradation and
    distance terms.
    """

    ensemble: DetectorEnsemble | Sequence[Detector]
    image: np.ndarray
    epsilon: float = 2.0
    use_activation_cache: bool = field(default_factory=default_use_activation_cache)
    activation_store: ActivationCacheStore | None = None
    members: list[ButterflyObjectives] = field(init=False)

    def __post_init__(self) -> None:
        detectors = (
            list(self.ensemble)
            if isinstance(self.ensemble, DetectorEnsemble)
            else list(self.ensemble)
        )
        if not detectors:
            raise ValueError("the ensemble must contain at least one detector")
        self.image = np.asarray(self.image, dtype=np.float64)
        # The activation cache fans out per member: each member evaluator
        # caches its own detector's clean activations (optionally through
        # one shared store, keyed by detector identity + image digest).
        self.members = [
            ButterflyObjectives(
                detector=d,
                image=self.image,
                epsilon=self.epsilon,
                use_activation_cache=self.use_activation_cache,
                activation_store=self.activation_store,
            )
            for d in detectors
        ]

    @property
    def num_members(self) -> int:
        return len(self.members)

    @property
    def clean_predictions(self):
        """Clean predictions of every ensemble member."""
        return [member.clean_prediction for member in self.members]

    def intensity(self, mask: np.ndarray) -> float:
        """Eq. 1: identical to every member's intensity objective."""
        return self.members[0].intensity(mask)

    def degradation(self, mask: np.ndarray) -> float:
        """Eq. 2: average of the members' obj_degrad."""
        perturbed_image = apply_mask(self.image, mask)
        values = [
            member.degradation(mask, member.detector.predict(perturbed_image))
            for member in self.members
        ]
        return float(np.mean(values))

    def distance(self, mask: np.ndarray, bbox: BBox | None = None) -> float:
        """Eq. 3: average of the members' obj_dist.

        ``bbox`` must be the mask's exact nonzero bounding box when given
        (see :func:`~repro.core.objectives.objective_distance`).
        """
        return float(
            np.mean([member.distance(mask, bbox) for member in self.members])
        )

    def raw_objectives(self, mask: np.ndarray) -> dict[str, float]:
        """Paper-oriented objective values for reporting."""
        return {
            "intensity": self.intensity(mask),
            "degradation": self.degradation(mask),
            "distance": self.distance(mask),
        }

    def __call__(
        self, mask: np.ndarray, dirty_bound: BBox | None = None
    ) -> np.ndarray:
        """Minimisation vector (intensity, mean degradation, -mean distance)."""
        mask = np.asarray(mask, dtype=np.float64)
        bbox = mask_nonzero_bbox(mask, within=dirty_bound)
        perturbed_image: np.ndarray | None = None
        degradations = []
        for member in self.members:
            if member.clean_activations is not None:
                prediction = member.detector.predict_delta(
                    self.image, mask, bbox, member.clean_activations
                )
            else:
                # One shared perturbed image serves every dense member.
                if perturbed_image is None:
                    perturbed_image = apply_mask(self.image, mask)
                prediction = member.detector.predict(perturbed_image)
            degradations.append(member.degradation(mask, prediction))
        distances = [member.distance(mask, bbox) for member in self.members]
        return self._vector(mask, degradations, distances)

    def _vector(
        self,
        mask: np.ndarray,
        degradations: Sequence[float],
        distances: Sequence[float],
    ) -> np.ndarray:
        return np.asarray(
            [
                self.intensity(mask),
                float(np.mean(degradations)),
                -float(np.mean(distances)),
            ],
            dtype=np.float64,
        )

    def evaluate_population(
        self,
        masks: np.ndarray,
        dirty_bounds: Sequence[BBox | None] | None = None,
    ) -> np.ndarray:
        """Evaluate a whole population of masks; shape (B, 3).

        Members with cached clean activations answer through their
        incremental ``predict_delta_batch`` path (recomputing only each
        mask's nonzero bounding box); the rest share one stacked
        ``predict_batch`` pass (Equations 1–3 applied per mask), producing
        vectors identical to calling the evaluator mask by mask.
        """
        masks = np.asarray(masks, dtype=np.float64)
        bounds: list[BBox | None]
        if dirty_bounds is None:
            bounds = [None] * masks.shape[0]
        else:
            bounds = list(dirty_bounds)
            if len(bounds) != masks.shape[0]:
                raise ValueError(
                    f"expected {masks.shape[0]} dirty bounds, got {len(bounds)}"
                )
        bboxes = [
            mask_nonzero_bbox(mask, within=bound)
            for mask, bound in zip(masks, bounds)
        ]
        perturbed_images: np.ndarray | None = None
        member_predictions = []
        for member in self.members:
            if member.clean_activations is not None:
                member_predictions.append(
                    member.detector.predict_delta_batch(
                        self.image, masks, bboxes, member.clean_activations
                    )
                )
            else:
                if perturbed_images is None:
                    # One shared dense stack (reusing the first member's
                    # scratch buffer) serves every non-incremental member.
                    perturbed_images = self.members[0].apply_masks(
                        masks, out=self.members[0]._population_scratch(masks.shape)
                    )
                member_predictions.append(
                    member.detector.predict_batch(perturbed_images)
                )
        rows = []
        for index, mask in enumerate(masks):
            degradations = [
                member.degradation(mask, predictions[index])
                for member, predictions in zip(self.members, member_predictions)
            ]
            distances = [
                member.distance(mask, bboxes[index]) for member in self.members
            ]
            rows.append(self._vector(mask, degradations, distances))
        return np.stack(rows, axis=0)


class EnsembleAttack:
    """Butterfly-effect attack against an ensemble of detectors."""

    def __init__(
        self,
        ensemble: DetectorEnsemble | Sequence[Detector],
        config: AttackConfig | None = None,
        activation_store: ActivationCacheStore | None = None,
    ) -> None:
        self.ensemble = (
            ensemble
            if isinstance(ensemble, DetectorEnsemble)
            else DetectorEnsemble(list(ensemble))
        )
        self.config = config if config is not None else AttackConfig()
        self.activation_store = activation_store

    def _constraint(self, mask: np.ndarray) -> np.ndarray:
        projected = self.config.region.project(mask)
        if self.config.round_masks:
            projected = np.round(projected)
        return np.clip(projected, -255.0, 255.0)

    def attack(self, image: np.ndarray) -> AttackResult:
        """Run NSGA-II against the whole ensemble and package the result."""
        image = np.asarray(image, dtype=np.float64)
        objectives = EnsembleObjectives(
            ensemble=self.ensemble,
            image=image,
            epsilon=self.config.epsilon,
            use_activation_cache=self.config.use_activation_cache,
            activation_store=self.activation_store,
        )
        optimizer = NSGAII(
            objective_function=objectives,
            genome_shape=image.shape,
            config=self.config.nsga,
            constraint=self._constraint,
        )
        nsga_result = optimizer.run()

        solutions: list[ParetoSolution] = []
        for individual in nsga_result.population:
            intensity, degradation, negated_distance = individual.objectives[:3]
            solutions.append(
                ParetoSolution(
                    mask=FilterMask(individual.genome),
                    intensity=float(intensity),
                    degradation=float(degradation),
                    distance=float(-negated_distance),
                    rank=int(individual.rank if individual.rank is not None else 0),
                )
            )

        # The reference prediction of the result is the first member's; the
        # per-member analysis can be recomputed from the masks if needed.
        reference = objectives.members[0]
        result = AttackResult(
            image=image,
            clean_prediction=reference.clean_prediction,
            solutions=solutions,
            detector_name=self.ensemble.name,
            num_evaluations=nsga_result.num_evaluations,
            cache_hits=nsga_result.cache_hits,
            history=nsga_result.history,
        )
        front = result.pareto_front
        if front:
            perturbed_images = np.stack(
                [apply_mask(image, solution.mask.values) for solution in front], axis=0
            )
            for solution, perturbed in zip(
                front, reference.detector.predict_batch(perturbed_images)
            ):
                solution.perturbed_prediction = perturbed
                solution.transitions = classify_transitions(
                    reference.clean_prediction, perturbed
                )
        return result
