"""The butterfly-effect attack orchestrator.

:class:`ButterflyAttack` wires everything together: it builds the
three-objective evaluator for a detector/image pair, applies the spatial
region constraint (e.g. "perturb only the right half"), runs NSGA-II and
packages the final population into an :class:`~repro.core.results.AttackResult`
with paper-oriented objective values and error-type transitions.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.config import AttackConfig
from repro.core.masks import FilterMask, apply_mask
from repro.core.objectives import ButterflyObjectives
from repro.core.results import AttackResult, ParetoSolution
from repro.detection.errors import classify_transitions
from repro.detection.prediction import Prediction
from repro.detectors.activation_cache import ActivationCacheStore
from repro.detectors.base import Detector
from repro.nsga.algorithm import NSGAII, NSGAConfig, NSGAResult
from repro.nsga.mutation import IntensityAnnealing


class ButterflyAttack:
    """Multi-objective black-box attack against one object detector.

    Parameters
    ----------
    detector:
        The attacked detector (any object with a ``predict(image)`` method
        following the :class:`~repro.detectors.base.Detector` interface).
    config:
        Attack configuration (NSGA-II parametrisation, perturbable region,
        Algorithm 2 buffer).  Defaults to the paper's Table II values with
        no region restriction.
    extra_objectives:
        Optional additional minimised objectives forwarded to
        :class:`~repro.core.objectives.ButterflyObjectives` (grey-box
        extension).
    activation_store:
        Optional shared clean-activation store (e.g. one per experiment
        sweep) so repeated attacks on the same ``(detector, scene)`` pair
        reuse one cached bundle; without it each attack builds a private
        one when ``config.use_activation_cache`` is on.
    """

    def __init__(
        self,
        detector: Detector,
        config: AttackConfig | None = None,
        extra_objectives: Sequence[
            Callable[[np.ndarray, np.ndarray, Prediction], float]
        ] = (),
        activation_store: "ActivationCacheStore | None" = None,
    ) -> None:
        self.detector = detector
        self.config = config if config is not None else AttackConfig()
        self.extra_objectives = tuple(extra_objectives)
        self.activation_store = activation_store

    def build_objectives(self, image: np.ndarray) -> ButterflyObjectives:
        """Create the cached objective evaluator for one image."""
        return ButterflyObjectives(
            detector=self.detector,
            image=image,
            epsilon=self.config.epsilon,
            extra_objectives=self.extra_objectives,
            use_activation_cache=self.config.use_activation_cache,
            activation_store=self.activation_store,
            use_delta_reuse=self.config.use_delta_reuse,
            delta_store_size=self.config.delta_store_size,
        )

    def _nsga_config(self) -> "NSGAConfig":
        """The NSGA-II configuration with attack-level options applied.

        ``sparse_init_fraction > 0`` rewrites the initialisation config so
        part of the initial population is drawn as patch-confined sparse
        masks; ``fast_search``/``rescore_every`` turn on the two-phase
        bounded-error search; ``anneal_final_window`` installs the
        mutation-intensity schedule.  At the defaults the configuration
        object is returned unchanged, so default attacks are bit-exact
        with the original path.
        """
        nsga = self.config.nsga
        if self.config.sparse_init_fraction > 0.0:
            nsga = replace(
                nsga,
                initialization=replace(
                    nsga.initialization,
                    sparse_fraction=self.config.sparse_init_fraction,
                ),
            )
        if self.config.fast_search:
            nsga = replace(
                nsga,
                fast_search=True,
                search_fidelity=self.config.search_fidelity,
                rescore_every=self.config.rescore_every,
            )
        if self.config.anneal_final_window is not None:
            nsga = replace(
                nsga,
                annealing=IntensityAnnealing(
                    final_window_fraction=self.config.anneal_final_window,
                    shape=self.config.anneal_shape,
                ),
            )
        return nsga

    def _constraint(self, mask: np.ndarray) -> np.ndarray:
        projected = self.config.region.project(mask)
        if self.config.round_masks:
            projected = np.round(projected)
        return np.clip(projected, -255.0, 255.0)

    def _package(
        self,
        image: np.ndarray,
        objectives: ButterflyObjectives,
        nsga_result: NSGAResult,
    ) -> AttackResult:
        solutions: list[ParetoSolution] = []
        for individual in nsga_result.population:
            intensity, degradation, negated_distance = individual.objectives[:3]
            extras = {
                f"extra_{i}": float(value)
                for i, value in enumerate(individual.objectives[3:])
            }
            solution = ParetoSolution(
                mask=FilterMask(individual.genome),
                intensity=float(intensity),
                degradation=float(degradation),
                distance=float(-negated_distance),
                rank=int(individual.rank if individual.rank is not None else 0),
                extras=extras,
            )
            solutions.append(solution)

        result = AttackResult(
            image=image,
            clean_prediction=objectives.clean_prediction,
            solutions=solutions,
            detector_name=getattr(self.detector, "name", repr(self.detector)),
            num_evaluations=nsga_result.num_evaluations,
            cache_hits=nsga_result.cache_hits,
            history=nsga_result.history,
            incremental=nsga_result.incremental,
        )

        # Fill in perturbed predictions and error transitions for the front
        # only (re-running the detector for all 101+ solutions would double
        # the attack cost for no benefit); one batched pass covers the front.
        front = result.pareto_front
        if front:
            perturbed_images = np.stack(
                [apply_mask(image, solution.mask.values) for solution in front], axis=0
            )
            for solution, perturbed in zip(
                front, self.detector.predict_batch(perturbed_images)
            ):
                solution.perturbed_prediction = perturbed
                solution.transitions = classify_transitions(
                    objectives.clean_prediction, perturbed
                )
        return result

    def attack(
        self,
        image: np.ndarray,
        callback: Optional[Callable[[int, list], None]] = None,
    ) -> AttackResult:
        """Run the full NSGA-II search against one image."""
        image = np.asarray(image, dtype=np.float64)
        objectives = self.build_objectives(image)
        optimizer = NSGAII(
            objective_function=objectives,
            genome_shape=image.shape,
            config=self._nsga_config(),
            constraint=self._constraint,
            callback=callback,
        )
        nsga_result = optimizer.run()
        return self._package(image, objectives, nsga_result)
