"""Attack results: Pareto solutions, champions and summaries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.masks import FilterMask
from repro.detection.errors import PredictionTransition
from repro.detection.prediction import Prediction


@dataclass
class ParetoSolution:
    """One solution of the final population with its paper-oriented objectives.

    Attributes
    ----------
    mask:
        The perturbation filter mask.
    intensity:
        obj_intensity (minimised).
    degradation:
        obj_degrad (minimised; 1 = unchanged prediction).
    distance:
        obj_dist (maximised; larger = further from the objects).
    rank:
        Pareto rank within the final population (1 = non-dominated).
    perturbed_prediction:
        The detector output on the perturbed image (filled in lazily by the
        attack for front solutions).
    transitions:
        Error-type transitions between the clean and perturbed predictions.
    """

    mask: FilterMask
    intensity: float
    degradation: float
    distance: float
    rank: int = 1
    perturbed_prediction: Optional[Prediction] = None
    transitions: list[PredictionTransition] = field(default_factory=list)
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def objectives(self) -> tuple[float, float, float]:
        """(intensity, degradation, distance) in the paper's orientation."""
        return (self.intensity, self.degradation, self.distance)

    @property
    def is_successful(self) -> bool:
        """A solution that changed the prediction at all (obj_degrad < 1)."""
        return self.degradation < 1.0 - 1e-9


@dataclass
class AttackResult:
    """Full outcome of one butterfly-effect attack run.

    The provenance fields (``architecture``, ``model_seed``,
    ``scene_index``, ``job_id``) are filled in by the experiment execution
    engine: results produced inside process-pool workers travel back to the
    parent as plain pickles, so each one must carry enough context to be
    re-attached to its position in the sweep's work plan regardless of the
    order in which workers complete.
    """

    image: np.ndarray
    clean_prediction: Prediction
    solutions: list[ParetoSolution]
    detector_name: str = ""
    num_evaluations: int = 0
    cache_hits: int = 0
    history: list[dict] = field(default_factory=list)
    #: Run-level incremental-inference stats (dirty-area ratio inputs,
    #: delta hits/misses) when the attack used activation caching;
    #: ``None`` on the dense path.  Per-generation entries live in
    #: ``history[gen]["incremental"]``.
    incremental: Optional[dict] = None
    architecture: str = ""
    model_seed: Optional[int] = None
    scene_index: Optional[int] = None
    job_id: Optional[int] = None

    @property
    def num_queries(self) -> int:
        """Objective evaluations that actually queried the detector.

        ``num_evaluations`` counts requested objective vectors; the NSGA-II
        evaluation cache answered ``cache_hits`` of them without running the
        detector.
        """
        return self.num_evaluations - self.cache_hits

    @property
    def pareto_front(self) -> list[ParetoSolution]:
        """The rank-1 solutions."""
        return [s for s in self.solutions if s.rank == 1]

    @property
    def successful_solutions(self) -> list[ParetoSolution]:
        """Solutions that changed the prediction (obj_degrad < 1)."""
        return [s for s in self.solutions if s.is_successful]

    def best_by(self, objective: str) -> ParetoSolution:
        """The champion solution for one objective.

        ``objective`` is ``"intensity"`` (smallest perturbation),
        ``"degradation"`` (strongest performance drop) or ``"distance"``
        (most unrelated perturbation).  This mirrors the paper's Figure 2,
        which shows the best solution per objective.
        """
        if not self.solutions:
            raise ValueError("the attack produced no solutions")
        if objective == "intensity":
            return min(self.solutions, key=lambda s: s.intensity)
        if objective == "degradation":
            return min(self.solutions, key=lambda s: s.degradation)
        if objective == "distance":
            return max(self.solutions, key=lambda s: s.distance)
        raise ValueError(
            "objective must be 'intensity', 'degradation' or 'distance', "
            f"got {objective!r}"
        )

    def objectives_array(self, front_only: bool = True) -> np.ndarray:
        """Objective triples as an array of shape (n, 3)."""
        source = self.pareto_front if front_only else self.solutions
        if not source:
            return np.zeros((0, 3))
        return np.array([s.objectives for s in source], dtype=np.float64)

    def fingerprint(self) -> tuple:
        """Exact content digest of everything the attack asserts.

        Two results are the same attack outcome iff their fingerprints are
        equal: detector, evaluation bookkeeping and every solution's raw
        mask bytes and float objectives, compared bit for bit (no
        tolerance).  The engine/backend parity suites and the A/B
        benchmarks compare sweeps through this single canonical digest.
        """
        return (
            self.detector_name,
            self.num_evaluations,
            self.cache_hits,
            tuple(
                (
                    s.mask.values.tobytes(),
                    s.intensity,
                    s.degradation,
                    s.distance,
                    s.rank,
                )
                for s in self.solutions
            ),
        )

    def summary(self) -> str:
        """A short human-readable summary of the attack outcome."""
        front = self.pareto_front
        if not front:
            return f"AttackResult({self.detector_name}): empty front"
        best_degradation = min(s.degradation for s in front)
        best_intensity = min(s.intensity for s in front)
        best_distance = max(s.distance for s in front)
        return (
            f"AttackResult({self.detector_name}): front={len(front)} "
            f"best obj_degrad={best_degradation:.3f} "
            f"best obj_intensity={best_intensity:.4f} "
            f"best obj_dist={best_distance:.4f} "
            f"evaluations={self.num_evaluations} "
            f"(cache hits {self.cache_hits}, detector queries {self.num_queries})"
        )
