"""The butterfly-effect attack: the paper's primary contribution.

* :mod:`repro.core.objectives` — the three objective functions of
  Section III-B (``obj_intensity``, ``obj_degrad`` — Algorithm 1,
  ``obj_dist`` — Algorithm 2),
* :mod:`repro.core.masks` — filter-mask representation and application,
* :mod:`repro.core.regions` — spatial constraints on where the mask may
  perturb (e.g. "right half only"),
* :mod:`repro.core.attack` — the :class:`ButterflyAttack` orchestrator
  driving NSGA-II,
* :mod:`repro.core.ensemble` — ensemble objectives (Equations 1–3),
* :mod:`repro.core.temporal` — temporally stable attacks across frames,
* :mod:`repro.core.results` — attack results and Pareto-front access,
* :mod:`repro.core.config` — attack configuration.
"""

from repro.core.objectives import (
    ButterflyObjectives,
    objective_degradation,
    objective_distance,
    objective_intensity,
    distance_weight_matrix,
)
from repro.core.masks import FilterMask, apply_mask
from repro.core.regions import (
    FullImageRegion,
    HalfImageRegion,
    RectangleRegion,
    Region,
    region_from_name,
)
from repro.core.config import AttackConfig
from repro.core.results import AttackResult, ParetoSolution
from repro.core.attack import ButterflyAttack
from repro.core.ensemble import EnsembleAttack, EnsembleObjectives
from repro.core.temporal import TemporalAttack, TemporalObjectives

__all__ = [
    "ButterflyObjectives",
    "objective_degradation",
    "objective_distance",
    "objective_intensity",
    "distance_weight_matrix",
    "FilterMask",
    "apply_mask",
    "FullImageRegion",
    "HalfImageRegion",
    "RectangleRegion",
    "Region",
    "region_from_name",
    "AttackConfig",
    "AttackResult",
    "ParetoSolution",
    "ButterflyAttack",
    "EnsembleAttack",
    "EnsembleObjectives",
    "TemporalAttack",
    "TemporalObjectives",
]
