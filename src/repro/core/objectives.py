"""The three butterfly-effect objectives of Section III-B.

* ``obj_intensity(δ) = ||δ||_2`` — the amount of perturbation (minimised),
* ``obj_degrad(img, δ, f)`` — Algorithm 1: the average best same-class IoU
  between the clean and the perturbed prediction (minimised; 1 means the
  prediction did not change, 0 means every object was lost or changed
  class),
* ``obj_dist(img, δ, f)`` — Algorithm 2: the perturbation-weighted distance
  between perturbed pixels and the detected objects, normalised by the
  number of perturbed pixels (maximised; the further from the objects the
  perturbation sits, the larger the value).

:class:`ButterflyObjectives` bundles the three into the minimisation vector
``(obj_intensity, obj_degrad, -obj_dist)`` consumed by NSGA-II, caching
everything that only depends on the clean image (the clean prediction and
the distance matrix ``D`` of Algorithm 2).

Two evaluation paths are offered: the sequential ``__call__`` (one mask,
one detector query) and the batched :meth:`ButterflyObjectives.
evaluate_population` (all masks applied in one broadcast, one vectorised
``predict_batch`` pass, degradation via a pairwise-IoU matrix).  The two
are bit-identical per mask — the parity test suite enforces it — so
NSGA-II picks the batched path purely for speed.

On top of the batched path sits the *incremental* path: when the detector
supports dirty-region inference, the evaluator caches the clean scene's
activations once (:class:`~repro.detectors.activation_cache.
CleanActivations`, optionally through a shared
:class:`~repro.detectors.activation_cache.ActivationCacheStore`) and routes
every mask through ``predict_delta`` / ``predict_delta_batch``, which
recompute only each mask's nonzero bounding box.  That path is again
bit-identical per mask, so ``use_activation_cache`` only changes speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.config import default_use_activation_cache, default_use_delta_reuse
from repro.core.masks import FilterMask, apply_mask
from repro.detection.boxes import iou_matrix
from repro.detection.prediction import Prediction
from repro.detectors.activation_cache import (
    DEFAULT_DELTA_STORE_ENTRIES,
    ActivationCacheStore,
    CleanActivations,
    DeltaActivationStore,
)
from repro.detectors.base import Detector
from repro.detectors.fidelity import EXACT_FIDELITY, FidelityConfig, resolve_fidelity
from repro.nn.incremental import BBox, bbox_area, bbox_is_empty, mask_nonzero_bbox


def objective_intensity(mask: np.ndarray) -> float:
    """``obj_intensity(δ) := ||δ||_2`` (Section III-B(a))."""
    return float(np.linalg.norm(np.asarray(mask, dtype=np.float64).ravel(), ord=2))


def objective_degradation(
    clean_prediction: Prediction, perturbed_prediction: Prediction
) -> float:
    """Algorithm 1: average best same-class IoU against the clean prediction.

    For every valid box of the clean prediction, the best IoU over
    same-class boxes of the perturbed prediction is accumulated; the sum is
    divided by the number of valid clean boxes.  A value of 1 means no
    change, 0 means every clean box lost its class or disappeared.  When the
    clean prediction has no valid boxes the objective is defined as 1 (there
    is nothing to degrade).
    """
    clean_boxes = clean_prediction.valid_boxes
    if not clean_boxes:
        return 1.0
    perturbed_boxes = perturbed_prediction.valid_boxes
    if not perturbed_boxes:
        return 0.0
    # Vectorised form of the paper's double loop: a pairwise-IoU matrix
    # masked to same-class pairs, then the best overlap per clean box.  The
    # final accumulation stays a left-to-right Python sum so the result is
    # bit-identical to the original nested-loop implementation (kept as a
    # reference in the property test suite).
    overlaps = iou_matrix(clean_boxes, perturbed_boxes)
    same_class = np.equal(
        np.array([box.cl for box in clean_boxes])[:, None],
        np.array([box.cl for box in perturbed_boxes])[None, :],
    )
    best = np.where(same_class, overlaps, 0.0).max(axis=1)
    accumulated = 0.0
    for value in best:
        accumulated += float(value)
    return accumulated / len(clean_boxes)


def distance_weight_matrix(
    clean_prediction: Prediction,
    image_length: int,
    image_width: int,
    epsilon: float = 0.0,
) -> np.ndarray:
    """The matrix ``D`` of Algorithm 2 (lines 1–16), precomputed per image.

    ``D[i, j]`` is the distance from pixel ``(i, j)`` to the nearest valid
    bounding-box *centre*; pixels inside any valid box (grown by the buffer
    ``ϵ``) are set to the negative average distance, so that perturbing them
    is penalised.  When there are no valid boxes every entry is the image
    diagonal (any perturbation is maximally "unrelated").
    """
    diagonal = float(np.sqrt(image_length**2 + image_width**2))
    rows = np.arange(image_length, dtype=np.float64)[:, None]
    cols = np.arange(image_width, dtype=np.float64)[None, :]

    distance = np.full((image_length, image_width), diagonal, dtype=np.float64)
    valid_boxes = clean_prediction.valid_boxes
    for box in valid_boxes:
        box_distance = np.sqrt((box.x - rows) ** 2 + (box.y - cols) ** 2)
        np.minimum(distance, box_distance, out=distance)

    if not valid_boxes:
        return distance

    negative_average = -float(distance.mean())
    inside = np.zeros((image_length, image_width), dtype=bool)
    for box in valid_boxes:
        x_lo = box.x - box.l / 2.0 - epsilon
        x_hi = box.x + box.l / 2.0 + epsilon
        y_lo = box.y - box.w / 2.0 - epsilon
        y_hi = box.y + box.w / 2.0 + epsilon
        inside |= (rows >= x_lo) & (rows <= x_hi) & (cols >= y_lo) & (cols <= y_hi)
    # Inside-the-box pixels get the (negative) average distance so that
    # perturbing them pulls the objective down (Algorithm 2, line 13).
    distance[inside] = negative_average
    return distance


def objective_distance(
    mask: np.ndarray,
    weight_matrix: np.ndarray,
    bbox: BBox | None = None,
) -> float:
    """Algorithm 2 (lines 17–24) given the precomputed matrix ``D``.

    The per-pixel maximum absolute perturbation over the RGB channels
    weighs the distance matrix; the weighted sum is divided by the number
    of perturbed pixels.  A zero mask has no perturbed pixels; its
    "unrelatedness" is defined as 0.

    All work happens on the mask's nonzero bounding box (every pixel
    outside contributes an exact zero to the weighted sum anyway), which is
    what makes sparse masks cheap.  ``bbox`` must be the *exact* box — pass
    :meth:`FilterMask.nonzero_bbox` or :func:`~repro.nn.incremental.
    mask_nonzero_bbox` output, never a loose bound — so that the summation
    grouping, and therefore the value, is a deterministic function of the
    mask alone; it is computed from the mask when omitted.
    """
    mask = np.asarray(mask, dtype=np.float64)
    if bbox is None:
        bbox = mask_nonzero_bbox(mask)
    if bbox_is_empty(bbox):
        return 0.0
    r0, r1, c0, c1 = bbox
    per_pixel_max = np.max(np.abs(mask[r0:r1, c0:c1]), axis=2)
    perturbed_count = int(np.count_nonzero(per_pixel_max))
    if perturbed_count == 0:
        return 0.0
    weighted = per_pixel_max * weight_matrix[r0:r1, c0:c1]
    return float(weighted.sum() / perturbed_count)


@dataclass
class ButterflyObjectives:
    """Evaluates the three objectives for one detector and one image.

    The returned minimisation vector is ``(obj_intensity, obj_degrad,
    -obj_dist)``; :meth:`raw_objectives` returns the paper's original
    orientation (``obj_dist`` to be maximised).

    Parameters
    ----------
    detector:
        The attacked (black-box) detector.
    image:
        The clean image.
    epsilon:
        Buffer ``ϵ`` around the bounding boxes used by Algorithm 2.
    extra_objectives:
        Optional additional minimised objectives, each a callable
        ``(image, mask, perturbed_prediction) -> float``.  Used for the
        grey-box feature-distance extension.
    normalize_intensity:
        When True (default) the L2 intensity is divided by the norm of a
        worst-case mask (every pixel at the maximum perturbation), giving a
        value in [0, 1] that is comparable across image sizes.
    normalize_distance:
        When True (default) obj_dist is divided by (image diagonal × 255),
        the value a single maximally strong perturbation at the largest
        possible distance would reach, giving a value in roughly [-1, 1]
        comparable across image sizes (the paper's Figure 2 reports
        obj_dist values around 0.5 on a comparable scale).
    use_activation_cache:
        Precompute the clean scene's activations and evaluate masks through
        the detector's incremental (dirty-region) path when it supports
        one.  Bit-identical to the dense path — the parity suite enforces
        it — so this switch only changes speed.  Defaults to on unless
        ``REPRO_ACTIVATION_CACHE=0`` is set (the benchmark A/B switch).
    activation_store:
        Optional shared :class:`ActivationCacheStore` (e.g. one per
        experiment sweep) supplying the clean activations; without it the
        evaluator builds its own private bundle.
    activation_bundle:
        Optional pre-derived :class:`CleanActivations` of ``image`` to use
        directly instead of consulting the store or rebuilding (the
        streaming-sequence workload derives each frame's bundle from the
        previous frame's and injects it here).  The bundle must belong to
        this image — it is trusted to be bit-identical to what
        ``detector.clean_activations(image)`` would build, which the
        temporal derivation guarantees.
    use_delta_reuse:
        Memoise each evaluated mask's spliced activations (keyed by the
        genome fingerprint NSGA-II propagates) and re-splice only the
        child-vs-parent diff for offspring whose ancestor is still cached.
        Requires the activation cache and a detector with delta-reuse
        support; bit-identical to the clean-splice path — the parity suite
        enforces it — so this switch only changes speed.  Defaults to on
        unless ``REPRO_DELTA_REUSE=0`` is set (the benchmark A/B switch).
    delta_store_size:
        LRU capacity (entries) of the per-scene delta-activation store.
    """

    detector: Detector
    image: np.ndarray
    epsilon: float = 2.0
    extra_objectives: Sequence[
        Callable[[np.ndarray, np.ndarray, Prediction], float]
    ] = field(default_factory=tuple)
    normalize_intensity: bool = True
    normalize_distance: bool = True
    use_activation_cache: bool = field(default_factory=default_use_activation_cache)
    activation_store: Optional[ActivationCacheStore] = None
    activation_bundle: Optional[CleanActivations] = None
    use_delta_reuse: bool = field(default_factory=default_use_delta_reuse)
    delta_store_size: int = DEFAULT_DELTA_STORE_ENTRIES

    def __post_init__(self) -> None:
        self.image = np.asarray(self.image, dtype=np.float64)
        if self.image.ndim != 3 or self.image.shape[2] != 3:
            raise ValueError("image must have shape (L, W, 3)")
        if self.delta_store_size < 1:
            raise ValueError("delta_store_size must be at least 1")
        self._scratch: Optional[np.ndarray] = None
        self._inc_masks = 0
        self._inc_dirty_area = 0
        self._inc_total_area = 0
        self._fidelity: FidelityConfig = EXACT_FIDELITY
        self._surrogates: dict[int, "ButterflyObjectives"] = {}
        self.clean_activations: Optional[CleanActivations] = None
        if self.use_activation_cache and getattr(
            self.detector, "supports_incremental", False
        ):
            if self.activation_bundle is not None:
                if self.activation_bundle.clean_image.shape != self.image.shape:
                    raise ValueError(
                        "injected activation bundle does not match the image: "
                        f"{self.activation_bundle.clean_image.shape} vs "
                        f"{self.image.shape}"
                    )
                self.clean_activations = self.activation_bundle
            elif self.activation_store is not None:
                self.clean_activations = self.activation_store.get(
                    self.detector, self.image
                )
            else:
                self.clean_activations = self.detector.clean_activations(self.image)
        # Delta reuse rides on the clean bundle: attach a per-scene store
        # when the detector supports reuse and the owning cache did not
        # already provide one (a store-managed bundle shares its store's
        # lifecycle — dropping the bundle drops the memoised deltas too).
        self._delta_reuse_active = (
            self.use_delta_reuse
            and self.clean_activations is not None
            and getattr(self.detector, "supports_delta_reuse", False)
        )
        if self._delta_reuse_active and self.clean_activations.delta is None:
            self.clean_activations.delta = DeltaActivationStore(
                max_entries=self.delta_store_size
            )
        if self.clean_activations is not None:
            # The cached clean prediction is decoded from the same forward
            # pass predict() would run, so downstream numbers are unchanged.
            self.clean_prediction: Prediction = self.clean_activations.prediction
        else:
            self.clean_prediction = self.detector.predict(self.image)
        self.weight_matrix: np.ndarray = distance_weight_matrix(
            self.clean_prediction,
            self.image.shape[0],
            self.image.shape[1],
            epsilon=self.epsilon,
        )
        self._intensity_scale = float(
            np.linalg.norm(np.full(self.image.shape, 255.0).ravel(), ord=2)
        )
        self._distance_scale = float(
            np.hypot(self.image.shape[0], self.image.shape[1]) * 255.0
        )

    @property
    def num_objectives(self) -> int:
        """Number of minimised objectives returned by :meth:`__call__`."""
        return 3 + len(self.extra_objectives)

    @property
    def fidelity(self) -> FidelityConfig:
        """The evaluation fidelity currently in force (exact by default)."""
        return self._fidelity

    @property
    def fidelity_tag(self) -> str:
        """Value-derived cache key of the current fidelity (see
        :attr:`~repro.detectors.fidelity.FidelityConfig.tag`)."""
        return self._fidelity.tag

    def set_fidelity(self, value: FidelityConfig | str | None) -> None:
        """Switch the evaluation fidelity for subsequent evaluations.

        ``None``/``"exact"`` restores the bit-exact default path; an
        approximate fidelity routes evaluations through the detector's
        bounded-error modes (and through a downscaled surrogate scene when
        ``scene_scale > 1``).  The two-phase NSGA-II driver toggles this
        around its search and re-scoring phases; values computed at
        different fidelities must never be compared as equal — callers key
        their caches by :attr:`fidelity_tag`.
        """
        self._fidelity = resolve_fidelity(value)

    def _surrogate_evaluator(self, scale: int) -> "ButterflyObjectives":
        """The cached evaluator of the ``[::scale, ::scale]`` scene.

        Fully self-consistent on the downscaled scene: its own clean
        prediction, distance matrix and normalisation scales.  Delta reuse
        is disabled (surrogate phases are transient, lineage records refer
        to full-resolution genomes); the activation store is shared so the
        surrogate bundle participates in the sweep-level cache lifecycle.
        """
        evaluator = self._surrogates.get(scale)
        if evaluator is None:
            evaluator = ButterflyObjectives(
                detector=self.detector,
                image=np.ascontiguousarray(self.image[::scale, ::scale]),
                epsilon=self.epsilon,
                extra_objectives=self.extra_objectives,
                normalize_intensity=self.normalize_intensity,
                normalize_distance=self.normalize_distance,
                use_activation_cache=self.use_activation_cache,
                activation_store=self.activation_store,
                use_delta_reuse=False,
            )
            self._surrogates[scale] = evaluator
        return evaluator

    def _surrogate_vectors(
        self, masks: np.ndarray, fidelity: FidelityConfig
    ) -> np.ndarray:
        """Objective vectors from the downscaled surrogate scene.

        Degradation and distance are evaluated on the subsampled scene and
        masks (any residual windowed/precision modes apply there too);
        intensity is always recomputed *exactly* on the full-resolution
        mask, so the phase's intensity axis stays comparable with exact
        values.
        """
        scale = fidelity.scene_scale
        surrogate = self._surrogate_evaluator(scale)
        inner = replace(fidelity, scene_scale=1)
        surrogate.set_fidelity(None if inner.is_exact else inner)
        try:
            vectors = surrogate.evaluate_population(
                np.ascontiguousarray(masks[:, ::scale, ::scale])
            )
        finally:
            surrogate.set_fidelity(None)
        for index in range(masks.shape[0]):
            vectors[index, 0] = self.intensity(masks[index])
        return vectors

    @property
    def intensity_scale(self) -> float:
        """L2 norm of the worst-case mask, used to normalise obj_intensity."""
        return self._intensity_scale

    @property
    def distance_scale(self) -> float:
        """Normalisation constant of obj_dist (image diagonal × 255)."""
        return self._distance_scale

    def intensity(self, mask: np.ndarray) -> float:
        """obj_intensity, optionally normalised to [0, 1]."""
        value = objective_intensity(mask)
        if self.normalize_intensity:
            return value / self._intensity_scale
        return value

    def degradation(self, mask: np.ndarray, perturbed: Prediction | None = None) -> float:
        """obj_degrad for a mask (running the detector unless given)."""
        if perturbed is None:
            perturbed = self._predict_perturbed(np.asarray(mask, dtype=np.float64))
        return objective_degradation(self.clean_prediction, perturbed)

    def distance(
        self, mask: np.ndarray | FilterMask, bbox: BBox | None = None
    ) -> float:
        """obj_dist for a mask, using the cached weight matrix.

        ``bbox`` must be the mask's exact nonzero bounding box when given
        (see :func:`objective_distance`); a :class:`FilterMask` supplies its
        cached :meth:`~repro.core.masks.FilterMask.nonzero_bbox`
        automatically.
        """
        if isinstance(mask, FilterMask):
            if bbox is None:
                bbox = mask.nonzero_bbox()
            mask = mask.values
        value = objective_distance(mask, self.weight_matrix, bbox=bbox)
        if self.normalize_distance:
            return value / self._distance_scale
        return value

    def _predict_perturbed(
        self, mask: np.ndarray, bbox: BBox | None = None
    ) -> Prediction:
        """Detector prediction on the perturbed image, via the incremental
        path when clean activations are cached (bit-identical either way).

        An approximate fidelity routes through the batch delta API (the
        fidelity-aware entry point); the default exact path is unchanged.
        """
        fidelity = self._fidelity
        if not fidelity.is_exact and fidelity.scene_scale == 1:
            if self.clean_activations is not None:
                return self.detector.predict_delta_batch(
                    self.image,
                    mask[None, ...],
                    [bbox],
                    self.clean_activations,
                    fidelity=fidelity,
                )[0]
            return self.detector.predict_batch_at(
                apply_mask(self.image, mask)[None, ...], fidelity
            )[0]
        if self.clean_activations is not None:
            return self.detector.predict_delta(
                self.image, mask, bbox, self.clean_activations
            )
        return self.detector.predict(apply_mask(self.image, mask))

    def raw_objectives(self, mask: np.ndarray) -> dict[str, float]:
        """The paper-oriented objective values for reporting.

        ``intensity`` and ``degradation`` are minimised, ``distance`` is
        maximised, exactly as the paper presents them.
        """
        mask = np.asarray(mask, dtype=np.float64)
        bbox = mask_nonzero_bbox(mask)
        perturbed = self._predict_perturbed(mask, bbox)
        values = {
            "intensity": self.intensity(mask),
            "degradation": self.degradation(mask, perturbed),
            "distance": self.distance(mask, bbox),
        }
        for index, extra in enumerate(self.extra_objectives):
            values[f"extra_{index}"] = float(extra(self.image, mask, perturbed))
        return values

    def __call__(
        self, mask: np.ndarray, dirty_bound: BBox | None = None
    ) -> np.ndarray:
        """Minimisation vector for NSGA-II.

        ``dirty_bound`` optionally restricts the nonzero scan to a window
        known to contain every nonzero pixel (the NSGA-II operators
        propagate one per offspring); it never changes the result.
        """
        mask = np.asarray(mask, dtype=np.float64)
        if self._fidelity.scene_scale > 1:
            return self._surrogate_vectors(mask[None, ...], self._fidelity)[0]
        bbox = mask_nonzero_bbox(mask, within=dirty_bound)
        if self.clean_activations is not None:
            self._record_incremental([bbox])
        perturbed = self._predict_perturbed(mask, bbox)
        return self._vector(mask, perturbed, bbox)

    def _record_incremental(self, bboxes: Sequence[BBox | None]) -> None:
        """Accumulate the dirty-area counters behind the per-generation stats."""
        frame = int(self.image.shape[0] * self.image.shape[1])
        self._inc_masks += len(bboxes)
        self._inc_total_area += frame * len(bboxes)
        self._inc_dirty_area += sum(
            bbox_area(bbox) if bbox is not None else frame for bbox in bboxes
        )

    def incremental_snapshot(self) -> dict | None:
        """Monotonic incremental-inference counters, ``None`` off the path.

        NSGA-II diffs consecutive snapshots into per-generation stats
        (dirty-area ratio, delta hits/misses); the counters never feed back
        into objective values.
        """
        if self.clean_activations is None:
            return None
        delta = self.clean_activations.delta
        counters = delta.counters() if delta is not None else None
        return {
            "masks_evaluated": self._inc_masks,
            "dirty_area": self._inc_dirty_area,
            "total_area": self._inc_total_area,
            "delta_hits": counters.delta_hits if counters is not None else 0,
            "delta_misses": counters.delta_misses if counters is not None else 0,
        }

    def _vector(
        self, mask: np.ndarray, perturbed: Prediction, bbox: BBox | None = None
    ) -> np.ndarray:
        """Assemble the minimisation vector from a perturbed prediction."""
        vector = [
            self.intensity(mask),
            self.degradation(mask, perturbed),
            -self.distance(mask, bbox),
        ]
        for extra in self.extra_objectives:
            vector.append(float(extra(self.image, mask, perturbed)))
        return np.asarray(vector, dtype=np.float64)

    def apply_masks(
        self, masks: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Apply a stack of masks at once; ``(B, L, W, 3)`` perturbed images.

        The broadcast add/clip performs the same per-element operations as
        :func:`~repro.core.masks.apply_mask` per mask, so the stacked images
        are bit-identical to the sequential path.  ``out`` optionally
        receives the stack in place (float64, shape ``masks.shape``) so a
        population of N masks can reuse one scratch buffer.
        """
        masks = np.asarray(masks, dtype=np.float64)
        if masks.ndim != 4 or masks.shape[1:] != self.image.shape:
            raise ValueError(
                f"expected masks of shape (B, *{self.image.shape}), got {masks.shape}"
            )
        if out is None:
            return np.clip(self.image[None, ...] + masks, 0.0, 255.0)
        if out.shape != masks.shape or out.dtype != np.float64:
            raise ValueError(
                f"out buffer must be float64 of shape {masks.shape}, "
                f"got {out.dtype} {out.shape}"
            )
        np.add(self.image[None, ...], masks, out=out)
        return np.clip(out, 0.0, 255.0, out=out)

    def _population_scratch(self, shape: tuple[int, ...]) -> np.ndarray:
        """One reusable (B, L, W, 3) buffer for dense population batches."""
        if self._scratch is None or self._scratch.shape != shape:
            self._scratch = np.empty(shape, dtype=np.float64)
        return self._scratch

    def evaluate_population(
        self,
        masks: np.ndarray,
        dirty_bounds: Sequence[BBox | None] | None = None,
        ancestry: Sequence[dict | None] | None = None,
    ) -> np.ndarray:
        """Evaluate a whole population of masks; shape (B, num_objectives).

        With cached clean activations every mask routes through the
        detector's incremental ``predict_delta_batch`` path (recomputing
        only its nonzero bounding box); otherwise all masks are applied in
        one broadcast pass into a reused scratch buffer and the detector
        runs once over the stacked batch.  ``dirty_bounds`` optionally caps
        the per-mask nonzero scans (one bound per mask, ``None`` entries
        meaning unknown).  ``ancestry`` optionally carries one lineage
        record per mask (own fingerprint, parent fingerprint, diff bound)
        for the cross-generation delta-reuse path; records are forwarded
        only when reuse is active and never change objective values.
        Per-mask objective vectors are identical to calling the evaluator
        mask by mask on every route, which is what lets NSGA-II switch
        freely between the evaluation paths.
        """
        masks = np.asarray(masks, dtype=np.float64)
        if masks.ndim != 4 or masks.shape[1:] != self.image.shape:
            raise ValueError(
                f"expected masks of shape (B, *{self.image.shape}), got {masks.shape}"
            )
        fidelity = self._fidelity
        if fidelity.scene_scale > 1:
            return self._surrogate_vectors(masks, fidelity)
        predictions, bboxes = self.predict_population(masks, dirty_bounds, ancestry)
        return np.stack(
            [
                self._vector(mask, prediction, bbox)
                for mask, prediction, bbox in zip(masks, predictions, bboxes)
            ],
            axis=0,
        )

    def predict_population(
        self,
        masks: np.ndarray,
        dirty_bounds: Sequence[BBox | None] | None = None,
        ancestry: Sequence[dict | None] | None = None,
    ) -> tuple[list[Prediction], list[BBox]]:
        """Per-mask perturbed predictions plus exact nonzero bboxes.

        The prediction stage of :meth:`evaluate_population`, exposed so
        composite evaluators (the sequence workload's track-level scoring)
        can see each mask's prediction per frame instead of only the folded
        objective vector.  Same routing, same bit-parity guarantees; the
        surrogate (``scene_scale > 1``) fidelity has no full-resolution
        predictions to offer and is rejected.
        """
        masks = np.asarray(masks, dtype=np.float64)
        if masks.ndim != 4 or masks.shape[1:] != self.image.shape:
            raise ValueError(
                f"expected masks of shape (B, *{self.image.shape}), got {masks.shape}"
            )
        fidelity = self._fidelity
        if fidelity.scene_scale > 1:
            raise ValueError(
                "predict_population has no full-resolution predictions under "
                "a surrogate (scene_scale > 1) fidelity"
            )
        bounds: list[BBox | None]
        if dirty_bounds is None:
            bounds = [None] * masks.shape[0]
        else:
            bounds = list(dirty_bounds)
            if len(bounds) != masks.shape[0]:
                raise ValueError(
                    f"expected {masks.shape[0]} dirty bounds, got {len(bounds)}"
                )
        bboxes = [
            mask_nonzero_bbox(mask, within=bound)
            for mask, bound in zip(masks, bounds)
        ]
        if self.clean_activations is not None:
            self._record_incremental(bboxes)
            delta = self.clean_activations.delta
            if delta is not None:
                # Population boundary: shared-memory mappings of entries
                # evicted during the previous batch are safe to close now.
                delta.release_evicted()
            if not fidelity.is_exact:
                # Approximate phase: fidelity-aware routing, no ancestry —
                # the delta store's stored predictions are exact-only.
                predictions = self.detector.predict_delta_batch(
                    self.image,
                    masks,
                    bboxes,
                    self.clean_activations,
                    fidelity=fidelity,
                )
            elif self._delta_reuse_active:
                predictions = self.detector.predict_delta_batch(
                    self.image,
                    masks,
                    bboxes,
                    self.clean_activations,
                    ancestry=list(ancestry) if ancestry is not None else None,
                )
            else:
                predictions = self.detector.predict_delta_batch(
                    self.image, masks, bboxes, self.clean_activations
                )
        else:
            perturbed_images = self.apply_masks(
                masks, out=self._population_scratch(masks.shape)
            )
            predictions = (
                self.detector.predict_batch(perturbed_images)
                if fidelity.is_exact
                else self.detector.predict_batch_at(perturbed_images, fidelity)
            )
        return predictions, bboxes
