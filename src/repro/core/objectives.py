"""The three butterfly-effect objectives of Section III-B.

* ``obj_intensity(δ) = ||δ||_2`` — the amount of perturbation (minimised),
* ``obj_degrad(img, δ, f)`` — Algorithm 1: the average best same-class IoU
  between the clean and the perturbed prediction (minimised; 1 means the
  prediction did not change, 0 means every object was lost or changed
  class),
* ``obj_dist(img, δ, f)`` — Algorithm 2: the perturbation-weighted distance
  between perturbed pixels and the detected objects, normalised by the
  number of perturbed pixels (maximised; the further from the objects the
  perturbation sits, the larger the value).

:class:`ButterflyObjectives` bundles the three into the minimisation vector
``(obj_intensity, obj_degrad, -obj_dist)`` consumed by NSGA-II, caching
everything that only depends on the clean image (the clean prediction and
the distance matrix ``D`` of Algorithm 2).

Two evaluation paths are offered: the sequential ``__call__`` (one mask,
one detector query) and the batched :meth:`ButterflyObjectives.
evaluate_population` (all masks applied in one broadcast, one vectorised
``predict_batch`` pass, degradation via a pairwise-IoU matrix).  The two
are bit-identical per mask — the parity test suite enforces it — so
NSGA-II picks the batched path purely for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.masks import apply_mask
from repro.detection.boxes import iou_matrix
from repro.detection.prediction import Prediction
from repro.detectors.base import Detector


def objective_intensity(mask: np.ndarray) -> float:
    """``obj_intensity(δ) := ||δ||_2`` (Section III-B(a))."""
    return float(np.linalg.norm(np.asarray(mask, dtype=np.float64).ravel(), ord=2))


def objective_degradation(
    clean_prediction: Prediction, perturbed_prediction: Prediction
) -> float:
    """Algorithm 1: average best same-class IoU against the clean prediction.

    For every valid box of the clean prediction, the best IoU over
    same-class boxes of the perturbed prediction is accumulated; the sum is
    divided by the number of valid clean boxes.  A value of 1 means no
    change, 0 means every clean box lost its class or disappeared.  When the
    clean prediction has no valid boxes the objective is defined as 1 (there
    is nothing to degrade).
    """
    clean_boxes = clean_prediction.valid_boxes
    if not clean_boxes:
        return 1.0
    perturbed_boxes = perturbed_prediction.valid_boxes
    if not perturbed_boxes:
        return 0.0
    # Vectorised form of the paper's double loop: a pairwise-IoU matrix
    # masked to same-class pairs, then the best overlap per clean box.  The
    # final accumulation stays a left-to-right Python sum so the result is
    # bit-identical to the original nested-loop implementation (kept as a
    # reference in the property test suite).
    overlaps = iou_matrix(clean_boxes, perturbed_boxes)
    same_class = np.equal(
        np.array([box.cl for box in clean_boxes])[:, None],
        np.array([box.cl for box in perturbed_boxes])[None, :],
    )
    best = np.where(same_class, overlaps, 0.0).max(axis=1)
    accumulated = 0.0
    for value in best:
        accumulated += float(value)
    return accumulated / len(clean_boxes)


def distance_weight_matrix(
    clean_prediction: Prediction,
    image_length: int,
    image_width: int,
    epsilon: float = 0.0,
) -> np.ndarray:
    """The matrix ``D`` of Algorithm 2 (lines 1–16), precomputed per image.

    ``D[i, j]`` is the distance from pixel ``(i, j)`` to the nearest valid
    bounding-box *centre*; pixels inside any valid box (grown by the buffer
    ``ϵ``) are set to the negative average distance, so that perturbing them
    is penalised.  When there are no valid boxes every entry is the image
    diagonal (any perturbation is maximally "unrelated").
    """
    diagonal = float(np.sqrt(image_length**2 + image_width**2))
    rows = np.arange(image_length, dtype=np.float64)[:, None]
    cols = np.arange(image_width, dtype=np.float64)[None, :]

    distance = np.full((image_length, image_width), diagonal, dtype=np.float64)
    valid_boxes = clean_prediction.valid_boxes
    for box in valid_boxes:
        box_distance = np.sqrt((box.x - rows) ** 2 + (box.y - cols) ** 2)
        np.minimum(distance, box_distance, out=distance)

    if not valid_boxes:
        return distance

    negative_average = -float(distance.mean())
    inside = np.zeros((image_length, image_width), dtype=bool)
    for box in valid_boxes:
        x_lo = box.x - box.l / 2.0 - epsilon
        x_hi = box.x + box.l / 2.0 + epsilon
        y_lo = box.y - box.w / 2.0 - epsilon
        y_hi = box.y + box.w / 2.0 + epsilon
        inside |= (rows >= x_lo) & (rows <= x_hi) & (cols >= y_lo) & (cols <= y_hi)
    # Inside-the-box pixels get the (negative) average distance so that
    # perturbing them pulls the objective down (Algorithm 2, line 13).
    distance[inside] = negative_average
    return distance


def objective_distance(
    mask: np.ndarray,
    weight_matrix: np.ndarray,
) -> float:
    """Algorithm 2 (lines 17–24) given the precomputed matrix ``D``.

    The per-pixel maximum absolute perturbation over the RGB channels
    weighs the distance matrix; the weighted sum is divided by the number
    of perturbed pixels.  A zero mask has no perturbed pixels; its
    "unrelatedness" is defined as 0.
    """
    mask = np.asarray(mask, dtype=np.float64)
    per_pixel_max = np.max(np.abs(mask), axis=2)
    perturbed_count = int(np.count_nonzero(per_pixel_max))
    if perturbed_count == 0:
        return 0.0
    weighted = per_pixel_max * weight_matrix
    return float(weighted.sum() / perturbed_count)


@dataclass
class ButterflyObjectives:
    """Evaluates the three objectives for one detector and one image.

    The returned minimisation vector is ``(obj_intensity, obj_degrad,
    -obj_dist)``; :meth:`raw_objectives` returns the paper's original
    orientation (``obj_dist`` to be maximised).

    Parameters
    ----------
    detector:
        The attacked (black-box) detector.
    image:
        The clean image.
    epsilon:
        Buffer ``ϵ`` around the bounding boxes used by Algorithm 2.
    extra_objectives:
        Optional additional minimised objectives, each a callable
        ``(image, mask, perturbed_prediction) -> float``.  Used for the
        grey-box feature-distance extension.
    normalize_intensity:
        When True (default) the L2 intensity is divided by the norm of a
        worst-case mask (every pixel at the maximum perturbation), giving a
        value in [0, 1] that is comparable across image sizes.
    normalize_distance:
        When True (default) obj_dist is divided by (image diagonal × 255),
        the value a single maximally strong perturbation at the largest
        possible distance would reach, giving a value in roughly [-1, 1]
        comparable across image sizes (the paper's Figure 2 reports
        obj_dist values around 0.5 on a comparable scale).
    """

    detector: Detector
    image: np.ndarray
    epsilon: float = 2.0
    extra_objectives: Sequence[
        Callable[[np.ndarray, np.ndarray, Prediction], float]
    ] = field(default_factory=tuple)
    normalize_intensity: bool = True
    normalize_distance: bool = True

    def __post_init__(self) -> None:
        self.image = np.asarray(self.image, dtype=np.float64)
        if self.image.ndim != 3 or self.image.shape[2] != 3:
            raise ValueError("image must have shape (L, W, 3)")
        self.clean_prediction: Prediction = self.detector.predict(self.image)
        self.weight_matrix: np.ndarray = distance_weight_matrix(
            self.clean_prediction,
            self.image.shape[0],
            self.image.shape[1],
            epsilon=self.epsilon,
        )
        self._intensity_scale = float(
            np.linalg.norm(np.full(self.image.shape, 255.0).ravel(), ord=2)
        )
        self._distance_scale = float(
            np.hypot(self.image.shape[0], self.image.shape[1]) * 255.0
        )

    @property
    def num_objectives(self) -> int:
        """Number of minimised objectives returned by :meth:`__call__`."""
        return 3 + len(self.extra_objectives)

    @property
    def intensity_scale(self) -> float:
        """L2 norm of the worst-case mask, used to normalise obj_intensity."""
        return self._intensity_scale

    @property
    def distance_scale(self) -> float:
        """Normalisation constant of obj_dist (image diagonal × 255)."""
        return self._distance_scale

    def intensity(self, mask: np.ndarray) -> float:
        """obj_intensity, optionally normalised to [0, 1]."""
        value = objective_intensity(mask)
        if self.normalize_intensity:
            return value / self._intensity_scale
        return value

    def degradation(self, mask: np.ndarray, perturbed: Prediction | None = None) -> float:
        """obj_degrad for a mask (running the detector unless given)."""
        if perturbed is None:
            perturbed = self.detector.predict(apply_mask(self.image, mask))
        return objective_degradation(self.clean_prediction, perturbed)

    def distance(self, mask: np.ndarray) -> float:
        """obj_dist for a mask, using the cached weight matrix."""
        value = objective_distance(mask, self.weight_matrix)
        if self.normalize_distance:
            return value / self._distance_scale
        return value

    def raw_objectives(self, mask: np.ndarray) -> dict[str, float]:
        """The paper-oriented objective values for reporting.

        ``intensity`` and ``degradation`` are minimised, ``distance`` is
        maximised, exactly as the paper presents them.
        """
        perturbed = self.detector.predict(apply_mask(self.image, mask))
        values = {
            "intensity": self.intensity(mask),
            "degradation": self.degradation(mask, perturbed),
            "distance": self.distance(mask),
        }
        for index, extra in enumerate(self.extra_objectives):
            values[f"extra_{index}"] = float(extra(self.image, mask, perturbed))
        return values

    def __call__(self, mask: np.ndarray) -> np.ndarray:
        """Minimisation vector for NSGA-II."""
        perturbed = self.detector.predict(apply_mask(self.image, mask))
        return self._vector(mask, perturbed)

    def _vector(self, mask: np.ndarray, perturbed: Prediction) -> np.ndarray:
        """Assemble the minimisation vector from a perturbed prediction."""
        vector = [
            self.intensity(mask),
            self.degradation(mask, perturbed),
            -self.distance(mask),
        ]
        for extra in self.extra_objectives:
            vector.append(float(extra(self.image, mask, perturbed)))
        return np.asarray(vector, dtype=np.float64)

    def apply_masks(self, masks: np.ndarray) -> np.ndarray:
        """Apply a stack of masks at once; ``(B, L, W, 3)`` perturbed images.

        The broadcast add/clip performs the same per-element operations as
        :func:`~repro.core.masks.apply_mask` per mask, so the stacked images
        are bit-identical to the sequential path.
        """
        masks = np.asarray(masks, dtype=np.float64)
        if masks.ndim != 4 or masks.shape[1:] != self.image.shape:
            raise ValueError(
                f"expected masks of shape (B, *{self.image.shape}), got {masks.shape}"
            )
        return np.clip(self.image[None, ...] + masks, 0.0, 255.0)

    def evaluate_population(self, masks: np.ndarray) -> np.ndarray:
        """Evaluate a whole population of masks; shape (B, num_objectives).

        All masks are applied in one broadcast pass and the detector runs
        once over the stacked batch (its vectorised ``predict_batch`` fast
        path); the per-mask objective vectors are identical to calling the
        evaluator mask by mask, which is what lets NSGA-II switch freely
        between the batched and sequential evaluation paths.
        """
        masks = np.asarray(masks, dtype=np.float64)
        perturbed_images = self.apply_masks(masks)
        predictions = self.detector.predict_batch(perturbed_images)
        return np.stack(
            [
                self._vector(mask, prediction)
                for mask, prediction in zip(masks, predictions)
            ],
            axis=0,
        )
