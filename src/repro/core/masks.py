"""Filter masks: the explicit perturbation encoding of the paper.

A filter mask is a signed perturbation ``δ`` of the same shape as the image
with values in ``[-255, 255]``.  Applying the mask means ``clip(img + δ,
0, 255)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Bound of the signed perturbation range used throughout the paper.
MAX_PERTURBATION = 255.0


def apply_mask(image: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Apply a filter mask to an image and clip to the valid pixel range."""
    image = np.asarray(image, dtype=np.float64)
    mask = np.asarray(mask, dtype=np.float64)
    if image.shape != mask.shape:
        raise ValueError(
            f"mask shape {mask.shape} does not match image shape {image.shape}"
        )
    return np.clip(image + mask, 0.0, 255.0)


@dataclass
class FilterMask:
    """A perturbation mask with convenience accessors.

    Attributes
    ----------
    values:
        Signed perturbation array of shape (L, W, 3) in ``[-255, 255]``.
    """

    values: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 3 or self.values.shape[2] != 3:
            raise ValueError(
                f"a filter mask must have shape (L, W, 3), got {self.values.shape}"
            )

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.values.shape  # type: ignore[return-value]

    @property
    def l1_norm(self) -> float:
        """Sum of absolute perturbation values."""
        return float(np.sum(np.abs(self.values)))

    @property
    def l2_norm(self) -> float:
        """Euclidean norm of the perturbation (the paper's obj_intensity)."""
        return float(np.linalg.norm(self.values.ravel(), ord=2))

    @property
    def linf_norm(self) -> float:
        """Largest absolute perturbation value."""
        return float(np.max(np.abs(self.values))) if self.values.size else 0.0

    @property
    def per_pixel_max(self) -> np.ndarray:
        """Largest absolute perturbation over the RGB channels, shape (L, W).

        This is ``δ_abs^max`` of Algorithm 2 (line 20).
        """
        return np.max(np.abs(self.values), axis=2)

    @property
    def perturbed_pixel_count(self) -> int:
        """Number of pixels with a non-zero perturbation in any channel."""
        return int(np.count_nonzero(self.per_pixel_max))

    @property
    def is_zero(self) -> bool:
        return self.perturbed_pixel_count == 0

    def apply(self, image: np.ndarray) -> np.ndarray:
        """Return the perturbed image ``clip(img + δ, 0, 255)``."""
        return apply_mask(image, self.values)

    def clipped(self, max_value: float = MAX_PERTURBATION) -> "FilterMask":
        """Return a copy clipped to ``[-max_value, max_value]``."""
        return FilterMask(np.clip(self.values, -max_value, max_value))

    def rounded(self) -> "FilterMask":
        """Return a copy rounded to integer values (the paper's encoding)."""
        return FilterMask(np.round(self.values))

    @staticmethod
    def zeros(shape: tuple[int, int, int]) -> "FilterMask":
        """The all-zero mask (keeps the original image)."""
        return FilterMask(np.zeros(shape, dtype=np.float64))

    @staticmethod
    def random_gaussian(
        shape: tuple[int, int, int],
        sigma: float,
        rng: np.random.Generator | int | None = None,
        max_value: float = MAX_PERTURBATION,
    ) -> "FilterMask":
        """A Gaussian random mask clipped to the valid range."""
        if rng is None or isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng if rng is not None else 0)
        return FilterMask(np.clip(rng.normal(0.0, sigma, size=shape), -max_value, max_value))
