"""Filter masks: the explicit perturbation encoding of the paper.

A filter mask is a signed perturbation ``δ`` of the same shape as the image
with values in ``[-255, 255]``.  Applying the mask means ``clip(img + δ,
0, 255)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.incremental import BBox, bbox_area, mask_nonzero_bbox

#: Bound of the signed perturbation range used throughout the paper.
MAX_PERTURBATION = 255.0


def apply_mask(
    image: np.ndarray, mask: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Apply a filter mask to an image and clip to the valid pixel range.

    ``out`` optionally receives the perturbed image in place (it must have
    the image's shape and float64 dtype), so population evaluation can
    reuse one scratch buffer instead of allocating a fresh copy per mask;
    the add/clip operations are identical either way.
    """
    image = np.asarray(image, dtype=np.float64)
    mask = np.asarray(mask, dtype=np.float64)
    if image.shape != mask.shape:
        raise ValueError(
            f"mask shape {mask.shape} does not match image shape {image.shape}"
        )
    if out is None:
        return np.clip(image + mask, 0.0, 255.0)
    if out.shape != image.shape or out.dtype != np.float64:
        raise ValueError(
            f"out buffer must be float64 of shape {image.shape}, "
            f"got {out.dtype} {out.shape}"
        )
    np.add(image, mask, out=out)
    return np.clip(out, 0.0, 255.0, out=out)


@dataclass
class FilterMask:
    """A perturbation mask with convenience accessors.

    Attributes
    ----------
    values:
        Signed perturbation array of shape (L, W, 3) in ``[-255, 255]``.
    """

    values: np.ndarray
    _nonzero_bbox: BBox | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 3 or self.values.shape[2] != 3:
            raise ValueError(
                f"a filter mask must have shape (L, W, 3), got {self.values.shape}"
            )

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.values.shape  # type: ignore[return-value]

    @property
    def l1_norm(self) -> float:
        """Sum of absolute perturbation values."""
        return float(np.sum(np.abs(self.values)))

    @property
    def l2_norm(self) -> float:
        """Euclidean norm of the perturbation (the paper's obj_intensity)."""
        return float(np.linalg.norm(self.values.ravel(), ord=2))

    @property
    def linf_norm(self) -> float:
        """Largest absolute perturbation value."""
        return float(np.max(np.abs(self.values))) if self.values.size else 0.0

    @property
    def per_pixel_max(self) -> np.ndarray:
        """Largest absolute perturbation over the RGB channels, shape (L, W).

        This is ``δ_abs^max`` of Algorithm 2 (line 20).
        """
        return np.max(np.abs(self.values), axis=2)

    @property
    def perturbed_pixel_count(self) -> int:
        """Number of pixels with a non-zero perturbation in any channel."""
        return int(np.count_nonzero(self.per_pixel_max))

    @property
    def is_zero(self) -> bool:
        return self.perturbed_pixel_count == 0

    def nonzero_bbox(self) -> BBox:
        """Half-open ``(r0, r1, c0, c1)`` box of the perturbed pixels.

        The exact bounding box of the pixels with a nonzero value in any
        channel — the *dirty region* the incremental inference path
        recomputes.  Computed once and cached; the mask values must not be
        mutated in place afterwards (use :meth:`clipped`/:meth:`rounded`,
        which return fresh masks).  Returns ``(0, 0, 0, 0)`` for the zero
        mask.
        """
        if self._nonzero_bbox is None:
            self._nonzero_bbox = mask_nonzero_bbox(self.values)
        return self._nonzero_bbox

    @property
    def sparsity(self) -> float:
        """Fraction of image pixels inside the dirty bounding box.

        0 for the zero mask, 1 when the nonzero support spans the whole
        image; the incremental path uses it to decide between the windowed
        and the dense batched forward pass.
        """
        total = self.values.shape[0] * self.values.shape[1]
        if total == 0:
            return 0.0
        return bbox_area(self.nonzero_bbox()) / float(total)

    def apply(self, image: np.ndarray) -> np.ndarray:
        """Return the perturbed image ``clip(img + δ, 0, 255)``."""
        return apply_mask(image, self.values)

    def clipped(self, max_value: float = MAX_PERTURBATION) -> "FilterMask":
        """Return a copy clipped to ``[-max_value, max_value]``."""
        return FilterMask(np.clip(self.values, -max_value, max_value))

    def rounded(self) -> "FilterMask":
        """Return a copy rounded to integer values (the paper's encoding)."""
        return FilterMask(np.round(self.values))

    @staticmethod
    def zeros(shape: tuple[int, int, int]) -> "FilterMask":
        """The all-zero mask (keeps the original image)."""
        return FilterMask(np.zeros(shape, dtype=np.float64))

    @staticmethod
    def random_gaussian(
        shape: tuple[int, int, int],
        sigma: float,
        rng: np.random.Generator | int | None = None,
        max_value: float = MAX_PERTURBATION,
    ) -> "FilterMask":
        """A Gaussian random mask clipped to the valid range."""
        if rng is None or isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng if rng is not None else 0)
        return FilterMask(np.clip(rng.normal(0.0, sigma, size=shape), -max_value, max_value))
