"""Temporally stable attacks (Section IV-B, last paragraph).

A single filter mask ``δ`` is optimised to stay effective across a sequence
of frames: the degradation and distance objectives are averaged over the
frames of the sequence, while the intensity objective is the norm of the
(shared) mask.  The paper omits the formal definition for space reasons;
this is the natural analogue of the ensemble aggregation with frames taking
the place of detectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import AttackConfig
from repro.core.masks import FilterMask, apply_mask
from repro.core.objectives import ButterflyObjectives
from repro.core.results import AttackResult, ParetoSolution
from repro.data.sequences import SceneSequence
from repro.detectors.base import Detector
from repro.nsga.algorithm import NSGAII


@dataclass
class TemporalObjectives:
    """Objectives for a mask shared across all frames of a sequence."""

    detector: Detector
    frames: Sequence[np.ndarray]
    epsilon: float = 2.0
    per_frame: list[ButterflyObjectives] = field(init=False)

    def __post_init__(self) -> None:
        frames = [np.asarray(frame, dtype=np.float64) for frame in self.frames]
        if not frames:
            raise ValueError("the sequence must contain at least one frame")
        shapes = {frame.shape for frame in frames}
        if len(shapes) != 1:
            raise ValueError("all frames must have the same shape")
        self.frames = frames
        self.per_frame = [
            ButterflyObjectives(detector=self.detector, image=frame, epsilon=self.epsilon)
            for frame in frames
        ]

    @property
    def num_frames(self) -> int:
        return len(self.per_frame)

    def intensity(self, mask: np.ndarray) -> float:
        """Intensity of the single shared mask."""
        return self.per_frame[0].intensity(mask)

    def degradation(self, mask: np.ndarray) -> float:
        """Average obj_degrad over the frames."""
        return float(np.mean([obj.degradation(mask) for obj in self.per_frame]))

    def distance(self, mask: np.ndarray) -> float:
        """Average obj_dist over the frames."""
        return float(np.mean([obj.distance(mask) for obj in self.per_frame]))

    def raw_objectives(self, mask: np.ndarray) -> dict[str, float]:
        """Paper-oriented objective values for reporting."""
        return {
            "intensity": self.intensity(mask),
            "degradation": self.degradation(mask),
            "distance": self.distance(mask),
        }

    def __call__(self, mask: np.ndarray) -> np.ndarray:
        return np.asarray(
            [self.intensity(mask), self.degradation(mask), -self.distance(mask)],
            dtype=np.float64,
        )


class TemporalAttack:
    """Butterfly-effect attack with one mask shared across a frame sequence."""

    def __init__(
        self,
        detector: Detector,
        config: AttackConfig | None = None,
    ) -> None:
        self.detector = detector
        self.config = config if config is not None else AttackConfig()

    def _constraint(self, mask: np.ndarray) -> np.ndarray:
        projected = self.config.region.project(mask)
        if self.config.round_masks:
            projected = np.round(projected)
        return np.clip(projected, -255.0, 255.0)

    def attack(
        self, sequence: SceneSequence | Sequence[np.ndarray]
    ) -> AttackResult:
        """Run NSGA-II over a frame sequence; one shared mask for all frames."""
        frames = list(sequence.images if isinstance(sequence, SceneSequence) else sequence)
        objectives = TemporalObjectives(
            detector=self.detector, frames=frames, epsilon=self.config.epsilon
        )
        optimizer = NSGAII(
            objective_function=objectives,
            genome_shape=frames[0].shape,
            config=self.config.nsga,
            constraint=self._constraint,
        )
        nsga_result = optimizer.run()

        solutions: list[ParetoSolution] = []
        for individual in nsga_result.population:
            intensity, degradation, negated_distance = individual.objectives[:3]
            solutions.append(
                ParetoSolution(
                    mask=FilterMask(individual.genome),
                    intensity=float(intensity),
                    degradation=float(degradation),
                    distance=float(-negated_distance),
                    rank=int(individual.rank if individual.rank is not None else 0),
                )
            )
        result = AttackResult(
            image=frames[0],
            clean_prediction=objectives.per_frame[0].clean_prediction,
            solutions=solutions,
            detector_name=f"{getattr(self.detector, 'name', 'detector')}@{len(frames)}frames",
            num_evaluations=nsga_result.num_evaluations,
            history=nsga_result.history,
        )
        return result
