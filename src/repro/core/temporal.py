"""Temporally stable attacks (Section IV-B, last paragraph).

A single filter mask ``δ`` is optimised to stay effective across a sequence
of frames: the degradation and distance objectives are averaged over the
frames of the sequence, while the intensity objective is the norm of the
(shared) mask.  The paper omits the formal definition for space reasons;
this is the natural analogue of the ensemble aggregation with frames taking
the place of detectors.

Two evaluator/attack pairs live here:

* :class:`TemporalObjectives` / :class:`TemporalAttack` — the original
  scalar formulation: every frame is a fully independent
  :class:`~repro.core.objectives.ButterflyObjectives` and every mask is
  evaluated frame by frame through the dense path.  Kept as the slow
  reference implementation.
* :class:`SequenceObjectives` / :class:`SequenceAttack` — the streaming
  workload: frame t's clean activations are *derived* from frame t−1's
  cached bundle through :meth:`~repro.detectors.base.Detector.
  clean_activations_delta` (recomputing only the inter-frame dirty region,
  bounded by the scene-spec motion union), population evaluation rides the
  batched incremental path per frame, and a fourth *track-survival*
  objective scores track-level damage — the fraction of ground-truth
  objects the attack fails to suppress for ``track_k`` consecutive frames.
  Every temporal route is bit-identical to the dense per-frame forward;
  the sequence parity suite enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.config import AttackConfig, default_use_activation_cache, default_use_delta_reuse
from repro.core.attack import ButterflyAttack
from repro.core.masks import FilterMask, apply_mask
from repro.core.objectives import ButterflyObjectives, objective_degradation
from repro.core.results import AttackResult, ParetoSolution
from repro.data.sequences import SceneSequence
from repro.detection.boxes import iou_matrix
from repro.detection.errors import classify_transitions
from repro.detection.prediction import Prediction
from repro.detectors.activation_cache import (
    DEFAULT_DELTA_STORE_ENTRIES,
    ActivationCacheStore,
    CacheStats,
    SequenceActivationCache,
)
from repro.detectors.base import Detector
from repro.nn.incremental import BBox
from repro.nsga.algorithm import NSGAII, NSGAResult


@dataclass
class TemporalObjectives:
    """Objectives for a mask shared across all frames of a sequence."""

    detector: Detector
    frames: Sequence[np.ndarray]
    epsilon: float = 2.0
    per_frame: list[ButterflyObjectives] = field(init=False)

    def __post_init__(self) -> None:
        frames = [np.asarray(frame, dtype=np.float64) for frame in self.frames]
        if not frames:
            raise ValueError("the sequence must contain at least one frame")
        shapes = {frame.shape for frame in frames}
        if len(shapes) != 1:
            raise ValueError("all frames must have the same shape")
        self.frames = frames
        self.per_frame = [
            ButterflyObjectives(detector=self.detector, image=frame, epsilon=self.epsilon)
            for frame in frames
        ]

    @property
    def num_frames(self) -> int:
        return len(self.per_frame)

    def intensity(self, mask: np.ndarray) -> float:
        """Intensity of the single shared mask."""
        return self.per_frame[0].intensity(mask)

    def degradation(self, mask: np.ndarray) -> float:
        """Average obj_degrad over the frames."""
        return float(np.mean([obj.degradation(mask) for obj in self.per_frame]))

    def distance(self, mask: np.ndarray) -> float:
        """Average obj_dist over the frames."""
        return float(np.mean([obj.distance(mask) for obj in self.per_frame]))

    def raw_objectives(self, mask: np.ndarray) -> dict[str, float]:
        """Paper-oriented objective values for reporting."""
        return {
            "intensity": self.intensity(mask),
            "degradation": self.degradation(mask),
            "distance": self.distance(mask),
        }

    def __call__(self, mask: np.ndarray) -> np.ndarray:
        return np.asarray(
            [self.intensity(mask), self.degradation(mask), -self.distance(mask)],
            dtype=np.float64,
        )


class TemporalAttack:
    """Butterfly-effect attack with one mask shared across a frame sequence."""

    def __init__(
        self,
        detector: Detector,
        config: AttackConfig | None = None,
    ) -> None:
        self.detector = detector
        self.config = config if config is not None else AttackConfig()

    def _constraint(self, mask: np.ndarray) -> np.ndarray:
        projected = self.config.region.project(mask)
        if self.config.round_masks:
            projected = np.round(projected)
        return np.clip(projected, -255.0, 255.0)

    def attack(
        self, sequence: SceneSequence | Sequence[np.ndarray]
    ) -> AttackResult:
        """Run NSGA-II over a frame sequence; one shared mask for all frames."""
        frames = list(sequence.images if isinstance(sequence, SceneSequence) else sequence)
        objectives = TemporalObjectives(
            detector=self.detector, frames=frames, epsilon=self.config.epsilon
        )
        optimizer = NSGAII(
            objective_function=objectives,
            genome_shape=frames[0].shape,
            config=self.config.nsga,
            constraint=self._constraint,
        )
        nsga_result = optimizer.run()

        solutions: list[ParetoSolution] = []
        for individual in nsga_result.population:
            intensity, degradation, negated_distance = individual.objectives[:3]
            solutions.append(
                ParetoSolution(
                    mask=FilterMask(individual.genome),
                    intensity=float(intensity),
                    degradation=float(degradation),
                    distance=float(-negated_distance),
                    rank=int(individual.rank if individual.rank is not None else 0),
                )
            )
        result = AttackResult(
            image=frames[0],
            clean_prediction=objectives.per_frame[0].clean_prediction,
            solutions=solutions,
            detector_name=f"{getattr(self.detector, 'name', 'detector')}@{len(frames)}frames",
            num_evaluations=nsga_result.num_evaluations,
            history=nsga_result.history,
        )
        return result


@dataclass
class SequenceObjectives:
    """Track-aware objectives over a streaming scene sequence.

    The minimisation vector is ``(obj_intensity, mean obj_degrad,
    -mean obj_dist, track_survival)``: the three butterfly objectives with
    degradation/distance averaged over the frames, plus the fraction of
    ground-truth tracks that *survive* the attack.  A track is the
    ground-truth box of one scene object followed through the sequence
    (:func:`~repro.data.scene.SceneSpec.ground_truth` emits one box per
    object in placement order, so the object index is the track identity);
    it counts as *suppressed* when the perturbed detector misses it — no
    same-class detection with IoU ≥ ``iou_threshold`` — for at least
    ``track_k`` consecutive frames.  Minimising survival therefore rewards
    masks that blind the detector to an object persistently rather than on
    scattered frames.

    Clean activations are built *temporally*: each frame's bundle is
    derived from the previous frame's through a rolling
    :class:`~repro.detectors.activation_cache.SequenceActivationCache`,
    recomputing only the inter-frame dirty region (bounded by the
    scene-spec motion union from :meth:`~repro.data.sequences.
    SceneSequence.dirty_bounds`) and splicing the rest.  The derivation is
    bit-identical to a dense per-frame ``clean_activations`` build — the
    sequence parity suite enforces it — so the temporal path only changes
    speed.  Each frame's bundle is injected into a per-frame
    :class:`~repro.core.objectives.ButterflyObjectives`, whose batched
    incremental path then serves population evaluation.

    Only exact fidelity is supported: the workload has no
    ``set_fidelity``, so requesting ``fast_search`` fails with NSGA-II's
    typed error.
    """

    detector: Detector
    sequence: SceneSequence
    epsilon: float = 2.0
    track_k: int = 2
    iou_threshold: float = 0.5
    frame_cache_size: int = 2
    use_activation_cache: bool = field(default_factory=default_use_activation_cache)
    activation_store: Optional[ActivationCacheStore] = None
    use_delta_reuse: bool = field(default_factory=default_use_delta_reuse)
    delta_store_size: int = DEFAULT_DELTA_STORE_ENTRIES
    frame_cache: Optional[SequenceActivationCache] = field(init=False, default=None)
    per_frame: list[ButterflyObjectives] = field(init=False)

    def __post_init__(self) -> None:
        if not isinstance(self.sequence, SceneSequence):
            raise TypeError(
                "SequenceObjectives needs a SceneSequence (scene specs drive "
                "the inter-frame dirty bounds and the ground-truth tracks); "
                "for plain frame lists use TemporalObjectives"
            )
        if len(self.sequence) == 0:
            raise ValueError("the sequence must contain at least one frame")
        if self.track_k < 1:
            raise ValueError("track_k must be at least 1")
        if self.frame_cache_size < 1:
            raise ValueError("frame_cache_size must be at least 1")
        frames = [np.asarray(frame, dtype=np.float64) for frame in self.sequence.images]
        shapes = {frame.shape for frame in frames}
        if len(shapes) != 1:
            raise ValueError("all frames must have the same shape")
        counts = {len(scene.objects) for scene in self.sequence.scenes}
        if len(counts) != 1:
            raise ValueError(
                "track correspondence requires a constant object count "
                f"across the sequence, got counts {sorted(counts)}"
            )
        bounds = self.sequence.dirty_bounds()
        if self.use_activation_cache:
            self.frame_cache = SequenceActivationCache(
                self.detector,
                max_frames=self.frame_cache_size,
                store=self.activation_store,
            )
        self.per_frame = []
        for frame, bound in zip(frames, bounds):
            bundle = (
                self.frame_cache.advance(frame, bound)
                if self.frame_cache is not None
                else None
            )
            self.per_frame.append(
                ButterflyObjectives(
                    detector=self.detector,
                    image=frame,
                    epsilon=self.epsilon,
                    use_activation_cache=self.use_activation_cache,
                    activation_bundle=bundle,
                    use_delta_reuse=self.use_delta_reuse,
                    delta_store_size=self.delta_store_size,
                )
            )
        # Track scaffolding: per frame, the ground-truth boxes in object
        # order (one per track) — computed once, reused for every mask.
        self._track_boxes = [
            ground_truth.valid_boxes for ground_truth in self.sequence.ground_truths
        ]

    @property
    def num_frames(self) -> int:
        return len(self.per_frame)

    @property
    def num_tracks(self) -> int:
        return len(self._track_boxes[0])

    @property
    def num_objectives(self) -> int:
        """(intensity, mean degradation, -mean distance, track survival)."""
        return 4

    def intensity(self, mask: np.ndarray) -> float:
        """Intensity of the single shared mask."""
        return self.per_frame[0].intensity(mask)

    def _frame_detected(
        self, frame_index: int, perturbed: Prediction
    ) -> list[bool]:
        """Per-track detection flags for one frame's perturbed prediction."""
        ground_truth = self._track_boxes[frame_index]
        if not ground_truth:
            return []
        predicted = perturbed.valid_boxes
        if not predicted:
            return [False] * len(ground_truth)
        overlaps = iou_matrix(ground_truth, predicted)
        same_class = np.equal(
            np.array([box.cl for box in ground_truth])[:, None],
            np.array([box.cl for box in predicted])[None, :],
        )
        best = np.where(same_class, overlaps, 0.0).max(axis=1)
        return [bool(value >= self.iou_threshold) for value in best]

    def track_survival(self, per_frame_predictions: Sequence[Prediction]) -> float:
        """Fraction of tracks the attack fails to suppress (minimised).

        A track is suppressed when its object goes undetected for at least
        ``track_k`` consecutive frames; the objective is
        ``1 - suppressed / num_tracks`` (1.0 when there are no tracks —
        nothing to suppress).
        """
        if len(per_frame_predictions) != self.num_frames:
            raise ValueError(
                f"expected {self.num_frames} per-frame predictions, "
                f"got {len(per_frame_predictions)}"
            )
        num_tracks = self.num_tracks
        if num_tracks == 0:
            return 1.0
        detected = [
            self._frame_detected(index, prediction)
            for index, prediction in enumerate(per_frame_predictions)
        ]
        suppressed = 0
        for track in range(num_tracks):
            run = longest = 0
            for frame_index in range(self.num_frames):
                if detected[frame_index][track]:
                    run = 0
                else:
                    run += 1
                    longest = max(longest, run)
            if longest >= self.track_k:
                suppressed += 1
        return 1.0 - suppressed / num_tracks

    def evaluate_population(
        self,
        masks: np.ndarray,
        dirty_bounds: Sequence[BBox | None] | None = None,
        ancestry: Sequence[dict | None] | None = None,
    ) -> np.ndarray:
        """Evaluate a population of shared masks; shape ``(B, 4)``.

        Each frame evaluator's :meth:`~repro.core.objectives.
        ButterflyObjectives.predict_population` supplies the per-frame
        perturbed predictions (through the incremental path when the
        temporal bundles are cached), which feed both the averaged
        degradation/distance objectives and the track-survival term.
        ``dirty_bounds``/``ancestry`` follow the single-scene contract:
        optional per-mask hints that never change objective values.
        """
        masks = np.asarray(masks, dtype=np.float64)
        per_frame_predictions: list[list[Prediction]] = []
        bboxes: list[BBox] = []
        for evaluator in self.per_frame:
            predictions, bboxes = evaluator.predict_population(
                masks, dirty_bounds, ancestry
            )
            per_frame_predictions.append(predictions)
        vectors = np.empty((masks.shape[0], self.num_objectives), dtype=np.float64)
        for index in range(masks.shape[0]):
            mask, bbox = masks[index], bboxes[index]
            degradations = [
                objective_degradation(
                    evaluator.clean_prediction, predictions[index]
                )
                for evaluator, predictions in zip(
                    self.per_frame, per_frame_predictions
                )
            ]
            distances = [
                evaluator.distance(mask, bbox) for evaluator in self.per_frame
            ]
            vectors[index] = (
                self.intensity(mask),
                float(np.mean(degradations)),
                -float(np.mean(distances)),
                self.track_survival(
                    [predictions[index] for predictions in per_frame_predictions]
                ),
            )
        return vectors

    def __call__(
        self, mask: np.ndarray, dirty_bound: BBox | None = None
    ) -> np.ndarray:
        mask = np.asarray(mask, dtype=np.float64)
        return self.evaluate_population(mask[None, ...], [dirty_bound])[0]

    def raw_objectives(self, mask: np.ndarray) -> dict[str, float]:
        """Paper-oriented objective values for reporting."""
        vector = self(mask)
        return {
            "intensity": float(vector[0]),
            "degradation": float(vector[1]),
            "distance": float(-vector[2]),
            "track_survival": float(vector[3]),
        }

    def incremental_snapshot(self) -> dict | None:
        """Summed per-frame incremental counters, ``None`` off the path.

        Same monotonic contract as the single-scene snapshot: NSGA-II
        diffs consecutive values into per-generation stats.
        """
        snapshots = [
            snapshot
            for snapshot in (
                evaluator.incremental_snapshot() for evaluator in self.per_frame
            )
            if snapshot is not None
        ]
        if not snapshots:
            return None
        totals: dict[str, int] = {}
        for snapshot in snapshots:
            for key, value in snapshot.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def frame_cache_snapshot(self) -> CacheStats:
        """The temporal frame cache's counters (empty when caching is off)."""
        if self.frame_cache is None:
            return CacheStats()
        return self.frame_cache.snapshot()


class SequenceAttack(ButterflyAttack):
    """Butterfly-effect attack on the streaming-sequence workload.

    Reuses :class:`~repro.core.attack.ButterflyAttack`'s constraint and
    NSGA-II configuration (sparse initialisation, annealing) but evaluates
    through :class:`SequenceObjectives`: temporally derived clean bundles,
    averaged per-frame objectives and the track-survival term.  The
    packaged result reports each front solution's ``track_survival`` in
    :attr:`~repro.core.results.ParetoSolution.extras` and the frame-cache
    counters under ``result.incremental["frame_cache"]``.
    """

    def __init__(
        self,
        detector: Detector,
        config: AttackConfig | None = None,
        activation_store: "ActivationCacheStore | None" = None,
        track_k: int = 2,
        iou_threshold: float = 0.5,
        frame_cache_size: int = 2,
    ) -> None:
        super().__init__(detector, config, (), activation_store)
        self.track_k = track_k
        self.iou_threshold = iou_threshold
        self.frame_cache_size = frame_cache_size

    def build_sequence_objectives(self, sequence: SceneSequence) -> SequenceObjectives:
        """Create the track-aware evaluator for one sequence."""
        return SequenceObjectives(
            detector=self.detector,
            sequence=sequence,
            epsilon=self.config.epsilon,
            track_k=self.track_k,
            iou_threshold=self.iou_threshold,
            frame_cache_size=self.frame_cache_size,
            use_activation_cache=self.config.use_activation_cache,
            activation_store=self.activation_store,
            use_delta_reuse=self.config.use_delta_reuse,
            delta_store_size=self.config.delta_store_size,
        )

    def attack(
        self,
        sequence: SceneSequence,
        callback: Optional[Callable[[int, list], None]] = None,
    ) -> AttackResult:
        """Run the full NSGA-II search against one scene sequence."""
        if self.config.fast_search:
            raise ValueError(
                "the sequence workload has no bounded-error fidelity path; "
                "disable fast_search"
            )
        objectives = self.build_sequence_objectives(sequence)
        optimizer = NSGAII(
            objective_function=objectives,
            genome_shape=objectives.per_frame[0].image.shape,
            config=self._nsga_config(),
            constraint=self._constraint,
            callback=callback,
        )
        nsga_result = optimizer.run()
        return self._package_sequence(objectives, nsga_result)

    def _package_sequence(
        self, objectives: SequenceObjectives, nsga_result: "NSGAResult"
    ) -> AttackResult:
        solutions: list[ParetoSolution] = []
        for individual in nsga_result.population:
            intensity, degradation, negated_distance, survival = (
                individual.objectives[:4]
            )
            solutions.append(
                ParetoSolution(
                    mask=FilterMask(individual.genome),
                    intensity=float(intensity),
                    degradation=float(degradation),
                    distance=float(-negated_distance),
                    rank=int(individual.rank if individual.rank is not None else 0),
                    extras={"track_survival": float(survival)},
                )
            )

        first_frame = objectives.per_frame[0]
        incremental = dict(nsga_result.incremental or {})
        frame_stats = objectives.frame_cache_snapshot()
        incremental["frame_cache"] = frame_stats.as_dict()
        result = AttackResult(
            image=first_frame.image,
            clean_prediction=first_frame.clean_prediction,
            solutions=solutions,
            detector_name=(
                f"{getattr(self.detector, 'name', 'detector')}"
                f"@{objectives.num_frames}frames"
            ),
            num_evaluations=nsga_result.num_evaluations,
            cache_hits=nsga_result.cache_hits,
            history=nsga_result.history,
            incremental=incremental,
        )

        # First-frame perturbed predictions and error transitions for the
        # front only, mirroring the single-scene packaging.
        front = result.pareto_front
        if front:
            perturbed_images = np.stack(
                [
                    apply_mask(first_frame.image, solution.mask.values)
                    for solution in front
                ],
                axis=0,
            )
            for solution, perturbed in zip(
                front, self.detector.predict_batch(perturbed_images)
            ):
                solution.perturbed_prediction = perturbed
                solution.transitions = classify_transitions(
                    first_frame.clean_prediction, perturbed
                )
        return result
