"""Fitting ("training") the simulated detectors on synthetic scenes.

The paper trains 25 YOLOv5 and 25 DETR models with random seeds 1..25 and
assumes each trained model predicts correctly on the clean evaluation
images.  Here, "training" means fitting the prototype classification head on
the backbone features the detector itself produces for a set of seeded
synthetic training scenes:

1. render training scenes containing objects of every class,
2. run the (untrained) detector backbone on each scene,
3. label every grid cell by ground-truth coverage,
4. average the backbone features per class into class prototypes and
   cluster the background features (k-means) into background prototypes,
5. calibrate the softmax temperature from the intra-class feature spread.

Because the prototypes are fit on the *same* backbone that is used at
inference time, clean-image predictions are correct by construction — which
is exactly the paper's starting assumption — while the susceptibility to
perturbations is entirely determined by the backbone's connectivity
(local for the single-stage model, global attention for the transformer).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.renderer import render_scene
from repro.data.scene import SceneSpec, random_scene
from repro.data.templates import KittiClass
from repro.detection.boxes import BoundingBox
from repro.detectors.base import Detector
from repro.detectors.prototypes import PrototypeBank


@dataclass(frozen=True)
class TrainingConfig:
    """Configuration of the prototype-fitting procedure.

    Attributes
    ----------
    scenes_per_class:
        Number of dedicated training scenes rendered per object class.
    objects_per_scene:
        (min, max) number of objects placed in each training scene.
    image_length, image_width:
        Resolution of the training scenes; should match the evaluation
        resolution so cell statistics transfer.
    coverage_threshold:
        Minimum fraction of a cell covered by a ground-truth box for the
        cell to be labelled with that class.
    background_clusters:
        Number of k-means clusters used to model the background (sky, road,
        lane markings, horizon and object-boundary cells).
    classes:
        The classes the detector is trained to recognise.
    """

    scenes_per_class: int = 5
    objects_per_scene: tuple[int, int] = (2, 3)
    image_length: int = 96
    image_width: int = 320
    coverage_threshold: float = 0.75
    background_clusters: int = 40
    classes: tuple[KittiClass, ...] = (
        KittiClass.CAR,
        KittiClass.PEDESTRIAN,
        KittiClass.CYCLIST,
        KittiClass.VAN,
        KittiClass.TRUCK,
    )


def _cell_coverage(box: BoundingBox, row: int, col: int, cell: int) -> float:
    """Fraction of the cell at grid position (row, col) covered by ``box``."""
    cell_x_min, cell_x_max = row * cell, (row + 1) * cell
    cell_y_min, cell_y_max = col * cell, (col + 1) * cell
    dx = min(cell_x_max, box.x_max) - max(cell_x_min, box.x_min)
    dy = min(cell_y_max, box.y_max) - max(cell_y_min, box.y_min)
    if dx <= 0 or dy <= 0:
        return 0.0
    return (dx * dy) / float(cell * cell)


def label_cells(
    scene: SceneSpec, grid_shape: tuple[int, int], cell: int, coverage_threshold: float
) -> np.ndarray:
    """Assign a class label (or -1 for background) to every grid cell."""
    rows, cols = grid_shape
    labels = np.full((rows, cols), -1, dtype=np.int64)
    for obj in scene.objects:
        box = obj.to_box()
        row_lo = max(0, int(box.x_min // cell))
        row_hi = min(rows, int(box.x_max // cell) + 1)
        col_lo = max(0, int(box.y_min // cell))
        col_hi = min(cols, int(box.y_max // cell) + 1)
        for row in range(row_lo, row_hi):
            for col in range(col_lo, col_hi):
                if _cell_coverage(box, row, col, cell) >= coverage_threshold:
                    labels[row, col] = box.cl
    return labels


def kmeans(
    points: np.ndarray, num_clusters: int, rng: np.random.Generator, iterations: int = 25
) -> np.ndarray:
    """Plain Lloyd's k-means; returns the cluster centroids.

    Deterministic given the generator.  Empty clusters are re-seeded from
    the point farthest from its assigned centroid.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D (n, dim)")
    num_points = points.shape[0]
    if num_points == 0:
        raise ValueError("cannot cluster an empty point set")
    num_clusters = min(num_clusters, num_points)
    initial = rng.choice(num_points, size=num_clusters, replace=False)
    centroids = points[initial].copy()
    for _ in range(iterations):
        distances = np.sum(
            (points[:, None, :] - centroids[None, :, :]) ** 2, axis=-1
        )
        assignment = np.argmin(distances, axis=1)
        for cluster in range(num_clusters):
            mask = assignment == cluster
            if mask.any():
                centroids[cluster] = points[mask].mean(axis=0)
            else:
                farthest = int(np.argmax(np.min(distances, axis=1)))
                centroids[cluster] = points[farthest]
    return centroids


def _training_scenes(training: TrainingConfig, seed: int) -> list[SceneSpec]:
    """Generate the training scenes: dedicated scenes for every class."""
    rng = np.random.default_rng(seed * 7919 + 13)
    scenes: list[SceneSpec] = []
    for class_id in training.classes:
        for _ in range(training.scenes_per_class):
            scenes.append(
                random_scene(
                    rng,
                    image_length=training.image_length,
                    image_width=training.image_width,
                    num_objects=training.objects_per_scene,
                    classes=(class_id,),
                )
            )
    return scenes


def fit_prototypes(
    detector: Detector,
    training: TrainingConfig,
    seed: int,
) -> PrototypeBank:
    """Fit a :class:`PrototypeBank` for a detector backbone."""
    scenes = _training_scenes(training, seed)
    num_classes = len(training.classes)
    cell = detector.config.cell
    rng = np.random.default_rng(seed * 104729 + 7)

    class_features: dict[int, list[np.ndarray]] = {int(c): [] for c in training.classes}
    background_features: list[np.ndarray] = []
    per_scene: list[tuple[np.ndarray, np.ndarray]] = []

    for scene in scenes:
        image = render_scene(scene)
        features = detector.backbone_features(image)
        labels = label_cells(scene, features.shape[:2], cell, training.coverage_threshold)
        per_scene.append((features, labels))
        for class_id in training.classes:
            mask = labels == int(class_id)
            if mask.any():
                class_features[int(class_id)].append(features[mask])
        background_features.append(features[labels == -1])

    feature_dim = per_scene[0][0].shape[-1]

    class_prototypes = np.zeros((num_classes, feature_dim))
    for index, class_id in enumerate(training.classes):
        samples = class_features[int(class_id)]
        if samples:
            class_prototypes[index] = np.concatenate(samples, axis=0).mean(axis=0)
        else:
            # A class without any labelled training cells gets a far-away
            # prototype so it can never be predicted.
            class_prototypes[index] = np.full(feature_dim, 1e3)

    background_matrix = np.concatenate(background_features, axis=0)
    background_prototypes = kmeans(
        background_matrix, training.background_clusters, rng
    )

    # Temperature calibration: mean squared distance of foreground training
    # cells to their own class prototype, so that the correct class has a
    # logit of roughly -1 and misclassifications are strongly penalised.
    squared_dists: list[float] = []
    for index, class_id in enumerate(training.classes):
        for sample in class_features[int(class_id)]:
            diffs = sample - class_prototypes[index]
            squared_dists.extend(np.sum(diffs**2, axis=-1).tolist())
    temperature = float(np.mean(squared_dists)) if squared_dists else 0.05
    temperature = max(temperature, 1e-4)

    return PrototypeBank(
        class_prototypes=class_prototypes,
        background_prototypes=background_prototypes,
        temperature=temperature,
        background_bias=detector.config.background_bias,
    )


def train_detector(
    detector: Detector,
    training: TrainingConfig | None = None,
    seed: int | None = None,
) -> Detector:
    """Fit the detector's prototype head in place and return the detector."""
    training = training if training is not None else TrainingConfig()
    seed = seed if seed is not None else detector.seed
    detector.prototypes = fit_prototypes(detector, training, seed)  # type: ignore[attr-defined]
    return detector
