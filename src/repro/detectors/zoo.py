"""Model zoo: building seeded populations of trained detectors.

The paper's Table I uses 25 YOLOv5 and 25 DETR models trained with random
seeds 1..25.  :func:`build_model_zoo` reproduces that protocol for the
simulated detectors.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.detectors.base import Detector, DetectorConfig
from repro.detectors.prototypes import PrototypeBank
from repro.detectors.single_stage import SingleStageDetector
from repro.detectors.training import TrainingConfig, fit_prototypes
from repro.detectors.transformer import TransformerDetector

#: Architecture aliases accepted by :func:`build_detector`.  The paper's
#: model names map onto the simulated families.
ARCHITECTURE_ALIASES: dict[str, str] = {
    "single_stage": "single_stage",
    "yolo": "single_stage",
    "yolov5": "single_stage",
    "transformer": "transformer",
    "detr": "transformer",
}


def _placeholder_prototypes(num_classes: int, feature_dim: int = 7) -> PrototypeBank:
    """A prototype bank used only while the backbone is being fit."""
    return PrototypeBank(
        class_prototypes=np.zeros((num_classes, feature_dim)),
        background_prototypes=np.zeros((1, feature_dim)),
        temperature=1.0,
    )


def build_detector(
    architecture: str,
    seed: int = 1,
    config: DetectorConfig | None = None,
    training: TrainingConfig | None = None,
    **detector_kwargs,
) -> Detector:
    """Build and train one detector of the requested architecture.

    Parameters
    ----------
    architecture:
        ``"single_stage"``/``"yolo"``/``"yolov5"`` or
        ``"transformer"``/``"detr"``.
    seed:
        Model seed (the paper uses 1..25).
    detector_kwargs:
        Extra keyword arguments forwarded to the detector constructor
        (e.g. ``attention_mix`` for the transformer).
    """
    key = ARCHITECTURE_ALIASES.get(architecture.lower())
    if key is None:
        raise ValueError(
            f"unknown architecture {architecture!r}; expected one of "
            f"{sorted(ARCHITECTURE_ALIASES)}"
        )
    config = config if config is not None else DetectorConfig()
    training = training if training is not None else TrainingConfig()

    placeholder = _placeholder_prototypes(len(training.classes))
    if key == "single_stage":
        detector: Detector = SingleStageDetector(
            prototypes=placeholder, config=config, seed=seed, **detector_kwargs
        )
    else:
        detector = TransformerDetector(
            prototypes=placeholder, config=config, seed=seed, **detector_kwargs
        )

    detector.prototypes = fit_prototypes(detector, training, seed)  # type: ignore[attr-defined]
    return detector


def build_model_zoo(
    architecture: str,
    seeds: Sequence[int] | Iterable[int] = range(1, 26),
    config: DetectorConfig | None = None,
    training: TrainingConfig | None = None,
    **detector_kwargs,
) -> list[Detector]:
    """Build one trained detector per seed (paper: seeds 1..25)."""
    return [
        build_detector(architecture, seed, config, training, **detector_kwargs)
        for seed in seeds
    ]
