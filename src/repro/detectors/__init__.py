"""Simulated object detectors.

The paper evaluates YOLOv5 (single-stage CNN) and DETR (transformer).  This
package provides pure-NumPy stand-ins that preserve the architectural
property the paper studies:

* :class:`SingleStageDetector` — per-cell predictions depend only on a
  *local receptive field* plus a weak global-context term (the YOLO-like
  connectivity pattern),
* :class:`TransformerDetector` — per-cell features are mixed through real
  softmax self-attention over *all* cells before classification (the
  DETR-like connectivity pattern).

Both share a prototype-based classification head that is fit ("trained") on
synthetic scenes, so that clean-image predictions are correct by
construction — the paper's starting assumption.
"""

from repro.detectors.activation_cache import ActivationCacheStore, CleanActivations
from repro.detectors.base import Detector, DetectorConfig
from repro.detectors.fidelity import (
    EXACT_FIDELITY,
    FIDELITY_PRESETS,
    FidelityConfig,
    fidelity_names,
    resolve_fidelity,
)
from repro.detectors.prototypes import PrototypeBank
from repro.detectors.single_stage import SingleStageDetector
from repro.detectors.transformer import TransformerDetector
from repro.detectors.training import TrainingConfig, train_detector
from repro.detectors.zoo import build_detector, build_model_zoo
from repro.detectors.ensemble import DetectorEnsemble

__all__ = [
    "ActivationCacheStore",
    "CleanActivations",
    "Detector",
    "DetectorConfig",
    "EXACT_FIDELITY",
    "FIDELITY_PRESETS",
    "FidelityConfig",
    "fidelity_names",
    "resolve_fidelity",
    "PrototypeBank",
    "SingleStageDetector",
    "TransformerDetector",
    "TrainingConfig",
    "train_detector",
    "build_detector",
    "build_model_zoo",
    "DetectorEnsemble",
]
