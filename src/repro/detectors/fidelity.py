"""Evaluation-fidelity abstraction for the two-phase fast search.

The bit-parity contract that governs every fast path in this repository
(batched, incremental, delta-reuse) caps the transformer incremental path
near ~1.6x: the global softmax mixing must be recomputed exactly for every
offspring.  :class:`FidelityConfig` is the escape hatch — an explicitly
opt-in description of *how cheap* an evaluation is allowed to be:

* ``attention_window`` — recompute the transformer's attention only for
  token rows inside the mask's dirty cell window (dilated by this radius);
  rows outside reuse the clean scene's cached attention state, with the
  raw-feature delta still propagated exactly through the stale weights.
* ``dtype`` — run the approximate forward pass at reduced precision
  (``"float32"``), quantising activations before the classification head.
* ``scene_scale`` — evaluate degradation/distance on a ``[::s, ::s]``
  subsampled surrogate scene; intensity is always computed on the full
  mask so it stays comparable with exact-phase values.

A fidelity is a *permission to approximate, never an obligation*: code
that does not implement a mode evaluates it exactly (exact results are
always within any error budget).  The exact fidelity routes through the
unchanged bit-parity paths, so the default search is bit-identical to a
run without this module.  The two-phase NSGA-II driver
(:mod:`repro.nsga.algorithm`) searches at an approximate fidelity and
re-scores survivors at :data:`EXACT_FIDELITY`, so *reported* Pareto fronts
remain bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Activation dtypes a fidelity may request.
_DTYPES = ("float64", "float32")


@dataclass(frozen=True)
class FidelityConfig:
    """One evaluation fidelity (see the module docstring for the modes).

    Attributes
    ----------
    name:
        Human-readable label (preset name, or free-form for custom configs).
    attention_window:
        Dilation radius, in grid cells, of the token window whose attention
        rows are recomputed around a mask's dirty region; ``None`` keeps the
        exact global attention.  ``0`` recomputes only the dirty cells
        themselves.  Only the transformer architecture interprets it.
    dtype:
        Activation dtype of the approximate forward pass (``"float64"`` or
        ``"float32"``).
    scene_scale:
        Subsampling stride of the surrogate scene (``1`` = full scene).
    """

    name: str = "exact"
    attention_window: int | None = None
    dtype: str = "float64"
    scene_scale: int = 1

    def __post_init__(self) -> None:
        if self.dtype not in _DTYPES:
            raise ValueError(f"dtype must be one of {_DTYPES}, got {self.dtype!r}")
        if self.attention_window is not None and self.attention_window < 0:
            raise ValueError("attention_window must be None or non-negative")
        if self.scene_scale < 1:
            raise ValueError("scene_scale must be at least 1")

    @property
    def is_exact(self) -> bool:
        """True when this fidelity requests no approximation at all."""
        return (
            self.attention_window is None
            and self.dtype == "float64"
            and self.scene_scale == 1
        )

    @property
    def numpy_dtype(self) -> np.dtype:
        """The requested activation dtype as a NumPy dtype."""
        return np.dtype(self.dtype)

    @property
    def tag(self) -> str:
        """Canonical value-derived key for caches keyed per fidelity.

        Two configs with identical approximation parameters share a tag
        regardless of their ``name``, so cache entries can never collide
        across genuinely different fidelities nor split across aliases.
        """
        if self.is_exact:
            return "exact"
        window = "-" if self.attention_window is None else str(self.attention_window)
        return f"w{window}:{self.dtype}:s{self.scene_scale}"


#: The fidelity of every pre-existing evaluation path (no approximation).
EXACT_FIDELITY = FidelityConfig()

#: Named presets selectable from ``AttackConfig`` / the CLI.
FIDELITY_PRESETS: dict[str, FidelityConfig] = {
    "exact": EXACT_FIDELITY,
    "windowed": FidelityConfig(name="windowed", attention_window=2),
    "float32": FidelityConfig(name="float32", dtype="float32"),
    "turbo": FidelityConfig(name="turbo", attention_window=2, dtype="float32"),
    "surrogate": FidelityConfig(name="surrogate", scene_scale=2),
}


def fidelity_names() -> tuple[str, ...]:
    """The selectable preset names, in a stable order."""
    return tuple(FIDELITY_PRESETS)


def resolve_fidelity(value: "FidelityConfig | str | None") -> FidelityConfig:
    """Normalise a fidelity selector to a :class:`FidelityConfig`.

    Accepts ``None`` (exact), a preset name, or an explicit config.
    """
    if value is None:
        return EXACT_FIDELITY
    if isinstance(value, FidelityConfig):
        return value
    try:
        return FIDELITY_PRESETS[value]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown evaluation fidelity {value!r}; "
            f"expected one of {sorted(FIDELITY_PRESETS)} or a FidelityConfig"
        ) from None
