"""Prototype-based classification head shared by the simulated detectors."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.ops import softmax


@dataclass
class PrototypeBank:
    """Class prototypes plus background prototypes in backbone-feature space.

    Scoring a cell feature ``f`` produces logits ``-||f - p_c||^2 / T`` for
    every class prototype and ``-min_b ||f - p_b||^2 / T + bias`` for the
    background, followed by a softmax.

    Attributes
    ----------
    class_prototypes:
        Array of shape (num_classes, dim).
    background_prototypes:
        Array of shape (num_background, dim).
    temperature:
        Softmax temperature calibrated during training.
    background_bias:
        Additive bias on the background logit.
    """

    class_prototypes: np.ndarray
    background_prototypes: np.ndarray
    temperature: float = 0.05
    background_bias: float = 0.0

    def __post_init__(self) -> None:
        self.class_prototypes = np.asarray(self.class_prototypes, dtype=np.float64)
        self.background_prototypes = np.asarray(
            self.background_prototypes, dtype=np.float64
        )
        if self.class_prototypes.ndim != 2:
            raise ValueError("class_prototypes must be 2-D (num_classes, dim)")
        if self.background_prototypes.ndim != 2:
            raise ValueError("background_prototypes must be 2-D (num_bg, dim)")
        if self.class_prototypes.shape[1] != self.background_prototypes.shape[1]:
            raise ValueError("prototype feature dimensions differ")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")

    @property
    def num_classes(self) -> int:
        return self.class_prototypes.shape[0]

    @property
    def feature_dim(self) -> int:
        return self.class_prototypes.shape[1]

    def logits(self, features: np.ndarray) -> np.ndarray:
        """Class + background logits for features of shape (..., dim).

        Returns an array of shape (..., num_classes + 1); the last channel
        is the background.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.shape[-1] != self.feature_dim:
            raise ValueError(
                f"feature dim {features.shape[-1]} does not match prototypes "
                f"({self.feature_dim})"
            )
        flat = features.reshape(-1, self.feature_dim)

        class_dist = np.sum(
            (flat[:, None, :] - self.class_prototypes[None, :, :]) ** 2, axis=-1
        )
        bg_dist = np.sum(
            (flat[:, None, :] - self.background_prototypes[None, :, :]) ** 2, axis=-1
        )
        bg_min = np.min(bg_dist, axis=-1, keepdims=True)

        logits = np.concatenate([-class_dist, -bg_min], axis=-1) / self.temperature
        logits[:, -1] += self.background_bias
        return logits.reshape(*features.shape[:-1], self.num_classes + 1)

    def probabilities(self, features: np.ndarray) -> np.ndarray:
        """Softmax class probabilities, background in the last channel."""
        return softmax(self.logits(features), axis=-1)

    def classify(self, features: np.ndarray) -> np.ndarray:
        """Hard class assignment; ``num_classes`` denotes background."""
        return np.argmax(self.logits(features), axis=-1)
