"""Single-stage (YOLO-like) simulated detector.

The defining architectural property reproduced here is *locality*: the class
probabilities of a grid cell are computed from that cell's own features, a
small local smoothing over its immediate neighbourhood (the receptive field
of a stack of convolutions) and a deliberately weak global-context term
(mirroring image-level normalisation effects in real CNNs).  A perturbation
far away from an object therefore has only a very weak path through which it
can change the object's prediction — which is why the paper finds YOLOv5
comparatively robust to butterfly-effect attacks.
"""

from __future__ import annotations

import numpy as np

from repro.detection.prediction import Prediction
from repro.detectors.activation_cache import CleanActivations
from repro.detectors.base import (
    Detector,
    DetectorConfig,
    validate_image,
    validate_image_batch,
)
from repro.detectors.prototypes import PrototypeBank
from repro.nn.conv import box_filter, box_filter_batch
from repro.nn.features import GridFeatureExtractor
from repro.nn.incremental import (
    BBox,
    bbox_is_empty,
    box_filter_window_channels,
    dilate_bbox,
    pixel_bbox_to_cell_bbox,
)


class SingleStageDetector(Detector):
    """Grid-cell detector with a local receptive field.

    Parameters
    ----------
    prototypes:
        Trained :class:`PrototypeBank` (see :mod:`repro.detectors.training`).
    config:
        Detector configuration.
    seed:
        Seed identifying this trained model instance.
    local_smoothing:
        Size (in cells) of the local box filter applied to cell features;
        models the receptive-field growth of stacked convolutions.
    global_context_weight:
        Weight of the image-level mean feature subtracted from every cell.
        Small but non-zero: real single-stage networks are not perfectly
        local either.
    """

    architecture = "single_stage"
    supports_incremental = True
    supports_delta_reuse = True

    def __init__(
        self,
        prototypes: PrototypeBank,
        config: DetectorConfig | None = None,
        seed: int = 0,
        local_smoothing: int = 3,
        global_context_weight: float = 0.03,
    ) -> None:
        super().__init__(config, seed)
        if local_smoothing < 1:
            raise ValueError("local_smoothing must be >= 1")
        if global_context_weight < 0:
            raise ValueError("global_context_weight must be non-negative")
        self.prototypes = prototypes
        self.local_smoothing = local_smoothing
        self.global_context_weight = global_context_weight
        self.extractor = GridFeatureExtractor(cell=self.config.cell)

    def _smooth(self, features: np.ndarray) -> np.ndarray:
        """Per-channel local box smoothing of a (rows, cols, dim) grid."""
        return np.stack(
            [
                box_filter(features[:, :, d], self.local_smoothing)
                for d in range(features.shape[2])
            ],
            axis=-1,
        )

    def _finalize_features(
        self, features: np.ndarray, smoothed: np.ndarray | None
    ) -> np.ndarray:
        """Blend raw/smoothed features and subtract the global-context mean.

        Both terms are whole-grid elementwise/reduction operations, so the
        delta path can run them on a spliced grid and stay bit-identical to
        the full forward pass.
        """
        if smoothed is not None:
            # Blend raw and smoothed features: the cell itself dominates but
            # neighbours contribute (receptive field larger than one cell).
            features = 0.6 * features + 0.4 * smoothed
        if self.global_context_weight > 0:
            global_mean = features.reshape(-1, features.shape[2]).mean(axis=0)
            features = features - self.global_context_weight * global_mean
        return features

    def backbone_features(self, image: np.ndarray) -> np.ndarray:
        """Local cell features: raw grid features, locally smoothed,
        minus a weak global-context mean."""
        image = validate_image(image)
        features = self.extractor(image)
        smoothed = self._smooth(features) if self.local_smoothing > 1 else None
        return self._finalize_features(features, smoothed)

    def cell_probabilities(self, image: np.ndarray) -> np.ndarray:
        """Per-cell class probabilities (rows, cols, num_classes + 1)."""
        return self.prototypes.probabilities(self.backbone_features(image))

    def predict(self, image: np.ndarray) -> Prediction:
        image = validate_image(image)
        probabilities = self.cell_probabilities(image)
        return self._decode(probabilities, (image.shape[0], image.shape[1]))

    def backbone_features_batch(self, images: np.ndarray) -> np.ndarray:
        """Batched :meth:`backbone_features`; returns (B, rows, cols, dim).

        Performs the same smoothing/context operations as the single-image
        path on a stacked feature tensor, so results per image are
        bit-identical.
        """
        images = validate_image_batch(images)
        features = self.extractor.batch(images)
        if self.local_smoothing > 1:
            smoothed = box_filter_batch(features, self.local_smoothing)
            features = 0.6 * features + 0.4 * smoothed
        if self.global_context_weight > 0:
            flat = features.reshape(features.shape[0], -1, features.shape[3])
            global_mean = flat.mean(axis=1)
            features = features - self.global_context_weight * global_mean[:, None, None, :]
        return features

    def cell_probabilities_batch(self, images: np.ndarray) -> np.ndarray:
        """Batched per-cell class probabilities (B, rows, cols, classes + 1)."""
        return self.prototypes.probabilities(self.backbone_features_batch(images))

    def predict_batch(self, images: np.ndarray) -> list[Prediction]:
        """Vectorised batch prediction, processed in cache-friendly chunks."""
        images = validate_image_batch(images)
        image_shape = (images.shape[1], images.shape[2])
        chunk = max(1, int(self.batch_chunk))
        predictions: list[Prediction] = []
        for start in range(0, images.shape[0], chunk):
            probabilities = self.cell_probabilities_batch(images[start : start + chunk])
            predictions.extend(self._decode_batch(probabilities, image_shape))
        return predictions

    def predict_batch_at(self, images: np.ndarray, fidelity=None) -> list[Prediction]:
        """Batch prediction at a fidelity.

        The single-stage forward has no attention stage to window, so only
        reduced precision applies: features are quantised to the requested
        dtype before the classification head.  Exact/float64 fidelities
        answer through the unchanged bit-identical path.
        """
        if fidelity is None or fidelity.numpy_dtype == np.float64:
            return self.predict_batch(images)
        images = validate_image_batch(images)
        image_shape = (images.shape[1], images.shape[2])
        dtype = fidelity.numpy_dtype
        chunk = max(1, int(self.batch_chunk))
        predictions: list[Prediction] = []
        for start in range(0, images.shape[0], chunk):
            features = self.backbone_features_batch(images[start : start + chunk])
            probabilities = self.prototypes.probabilities(features.astype(dtype))
            predictions.extend(self._decode_batch(probabilities, image_shape))
        return predictions

    # ------------------------------------------------------------------
    # Incremental (dirty-region) inference
    # ------------------------------------------------------------------

    def clean_activations(self, image: np.ndarray) -> CleanActivations:
        """Cache the clean scene's raw and smoothed feature grids.

        The cached image is ``clip(image + 0, 0, 255)`` — exactly what a
        zero mask produces — so activations spliced against these tensors
        are bit-identical to the full forward pass on the perturbed image.
        """
        image = validate_image(image)
        clean_image = np.clip(image + 0.0, 0.0, 255.0)
        features = self.extractor(clean_image)
        smoothed = self._smooth(features) if self.local_smoothing > 1 else None
        probabilities = self.prototypes.probabilities(
            self._finalize_features(features, smoothed)
        )
        prediction = self._decode(probabilities, (image.shape[0], image.shape[1]))
        tensors = {"features": features}
        if smoothed is not None:
            tensors["smoothed"] = smoothed
        return CleanActivations(
            clean_image=clean_image, prediction=prediction, tensors=tensors
        )

    def _delta_feature_state(
        self,
        image: np.ndarray,
        mask: np.ndarray,
        pixel_bbox: BBox,
        source: dict[str, np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray | None] | None:
        """Pre-finalisation ``(features, smoothed)`` pair after splicing the
        ``pixel_bbox`` window into ``source`` grids, or ``None`` when the
        window touches no grid cell.

        ``source`` is either the clean bundle's tensors or an evaluated
        ancestor's stored grids (cross-generation reuse) — the splice is
        the same either way: recompute the feature extraction on the dirty
        cell window (pixel box dilated by the 1-pixel Sobel halo), splice
        it into the source raw grid, and recompute the local smoothing on
        the window dilated by the box-filter radius.  Cells outside the
        window read identical input pixels in the source and the perturbed
        image, so the spliced grids are bit-identical to a full recompute.
        """
        grid_shape = self.extractor.grid_shape(image)
        cell_bbox = pixel_bbox_to_cell_bbox(
            dilate_bbox(pixel_bbox, 1, (image.shape[0], image.shape[1])),
            self.config.cell,
            grid_shape,
        )
        if bbox_is_empty(cell_bbox):
            return None
        features = source["features"].copy()
        cr0, cr1, cc0, cc1 = cell_bbox
        features[cr0:cr1, cc0:cc1] = self.extractor.window_features(
            image, mask, cell_bbox
        )
        smoothed: np.ndarray | None = None
        if self.local_smoothing > 1:
            if self.local_smoothing % 2 == 1:
                smoothed = source["smoothed"].copy()
                smooth_bbox = dilate_bbox(
                    cell_bbox, self.local_smoothing // 2, grid_shape
                )
                sr0, sr1, sc0, sc1 = smooth_bbox
                smoothed[sr0:sr1, sc0:sc1] = box_filter_window_channels(
                    features, self.local_smoothing, smooth_bbox
                )
            else:
                # Even box sizes follow scipy's 'same'-mode alignment, which
                # the windowed kernels do not reproduce; the grid is tiny,
                # so recompute the smoothing stage whole-grid instead.
                smoothed = self._smooth(features)
        return features, smoothed

    def _delta_feature_grid(
        self,
        image: np.ndarray,
        mask: np.ndarray,
        pixel_bbox: BBox,
        clean: CleanActivations,
    ) -> np.ndarray | None:
        """Finalised feature grid of the perturbed image, or ``None`` when
        the dirty region touches no grid cell (prediction is the clean one).

        The windowed splice happens in :meth:`_delta_feature_state`; this
        finishes with the whole-grid blend and global-context stages —
        every step bit-identical to the full pass.
        """
        state = self._delta_feature_state(image, mask, pixel_bbox, clean.tensors)
        if state is None:
            return None
        return self._finalize_features(*state)

    def _predict_delta_windowed(
        self,
        image: np.ndarray,
        mask: np.ndarray,
        pixel_bbox: BBox,
        clean: CleanActivations,
    ) -> Prediction:
        grid = self._delta_feature_grid(image, mask, pixel_bbox, clean)
        if grid is None:
            return clean.prediction
        probabilities = self.prototypes.probabilities(grid)
        return self._decode(probabilities, (image.shape[0], image.shape[1]))

    def _predict_delta_windowed_batch(
        self,
        image: np.ndarray,
        masks: np.ndarray,
        items: list[tuple[int, BBox]],
        clean: CleanActivations,
        fidelity=None,
    ) -> list[Prediction]:
        """Batch the classification head over the sparse population members.

        The per-member windowed work happens in a loop (window sizes
        differ), but the prototype probabilities run once over the stacked
        grids — per-cell operations, bit-identical to the per-grid call.
        A reduced-precision ``fidelity`` quantises the stacked grids before
        the head (the splice itself is already windowed and stays exact);
        exact/``None`` is the unchanged parity path.
        """
        grids = [
            self._delta_feature_grid(image, masks[index], bbox, clean)
            for index, bbox in items
        ]
        live = [i for i, grid in enumerate(grids) if grid is not None]
        predictions: list[Prediction] = [clean.prediction] * len(items)
        if live:
            stacked = np.stack([grids[i] for i in live], axis=0)
            if fidelity is not None and fidelity.numpy_dtype != np.float64:
                stacked = stacked.astype(fidelity.numpy_dtype)
            probabilities = self.prototypes.probabilities(stacked)
            image_shape = (image.shape[0], image.shape[1])
            decoded = self._decode_batch(probabilities, image_shape)
            for i, prediction in zip(live, decoded):
                predictions[i] = prediction
        return predictions

    def _predict_delta_spliced_batch(
        self,
        image: np.ndarray,
        masks: np.ndarray,
        items: list[tuple[int, BBox, dict, Prediction]],
    ) -> tuple[list[Prediction], list[dict | None]]:
        """Windowed recompute of sparse members against explicit sources.

        Identical arithmetic to :meth:`_predict_delta_windowed_batch` — the
        per-cell prototype probabilities are independent per grid, so the
        stacked head gives bit-identical results however items mix clean
        and ancestor sources — plus the pre-finalisation grids for the
        delta store.

        The temporal frame-to-frame derivation (:meth:`~repro.detectors.
        base.Detector.clean_activations_delta`) also routes here, with a
        *zero* mask and the previous frame's clean tensors as the source:
        ``clip(image + 0)`` is the new frame's clean image, so the splice
        over the inter-frame diff window yields the new frame's clean
        activations bit-exactly, and the returned state dicts use the same
        stage names (``features``/``smoothed``) as the clean bundle.
        """
        states = [
            self._delta_feature_state(image, masks[index], bbox, source)
            for index, bbox, source, _ in items
        ]
        live = [i for i, state in enumerate(states) if state is not None]
        predictions: list[Prediction] = [fallback for _, _, _, fallback in items]
        if live:
            probabilities = self.prototypes.probabilities(
                np.stack(
                    [self._finalize_features(*states[i]) for i in live], axis=0
                )
            )
            image_shape = (image.shape[0], image.shape[1])
            decoded = self._decode_batch(probabilities, image_shape)
            for i, prediction in zip(live, decoded):
                predictions[i] = prediction
        state_dicts: list[dict | None] = []
        for state in states:
            if state is None:
                state_dicts.append(None)
                continue
            features, smoothed = state
            tensors = {"features": features}
            if smoothed is not None:
                tensors["smoothed"] = smoothed
            state_dicts.append(tensors)
        return predictions, state_dicts
