"""Single-stage (YOLO-like) simulated detector.

The defining architectural property reproduced here is *locality*: the class
probabilities of a grid cell are computed from that cell's own features, a
small local smoothing over its immediate neighbourhood (the receptive field
of a stack of convolutions) and a deliberately weak global-context term
(mirroring image-level normalisation effects in real CNNs).  A perturbation
far away from an object therefore has only a very weak path through which it
can change the object's prediction — which is why the paper finds YOLOv5
comparatively robust to butterfly-effect attacks.
"""

from __future__ import annotations

import numpy as np

from repro.detection.prediction import Prediction
from repro.detectors.base import (
    Detector,
    DetectorConfig,
    validate_image,
    validate_image_batch,
)
from repro.detectors.decode import decode_cell_probabilities
from repro.detectors.prototypes import PrototypeBank
from repro.nn.conv import box_filter, box_filter_batch
from repro.nn.features import GridFeatureExtractor


class SingleStageDetector(Detector):
    """Grid-cell detector with a local receptive field.

    Parameters
    ----------
    prototypes:
        Trained :class:`PrototypeBank` (see :mod:`repro.detectors.training`).
    config:
        Detector configuration.
    seed:
        Seed identifying this trained model instance.
    local_smoothing:
        Size (in cells) of the local box filter applied to cell features;
        models the receptive-field growth of stacked convolutions.
    global_context_weight:
        Weight of the image-level mean feature subtracted from every cell.
        Small but non-zero: real single-stage networks are not perfectly
        local either.
    """

    architecture = "single_stage"

    def __init__(
        self,
        prototypes: PrototypeBank,
        config: DetectorConfig | None = None,
        seed: int = 0,
        local_smoothing: int = 3,
        global_context_weight: float = 0.03,
    ) -> None:
        super().__init__(config, seed)
        if local_smoothing < 1:
            raise ValueError("local_smoothing must be >= 1")
        if global_context_weight < 0:
            raise ValueError("global_context_weight must be non-negative")
        self.prototypes = prototypes
        self.local_smoothing = local_smoothing
        self.global_context_weight = global_context_weight
        self.extractor = GridFeatureExtractor(cell=self.config.cell)

    def backbone_features(self, image: np.ndarray) -> np.ndarray:
        """Local cell features: raw grid features, locally smoothed,
        minus a weak global-context mean."""
        image = validate_image(image)
        features = self.extractor(image)
        if self.local_smoothing > 1:
            smoothed = np.stack(
                [
                    box_filter(features[:, :, d], self.local_smoothing)
                    for d in range(features.shape[2])
                ],
                axis=-1,
            )
            # Blend raw and smoothed features: the cell itself dominates but
            # neighbours contribute (receptive field larger than one cell).
            features = 0.6 * features + 0.4 * smoothed
        if self.global_context_weight > 0:
            global_mean = features.reshape(-1, features.shape[2]).mean(axis=0)
            features = features - self.global_context_weight * global_mean
        return features

    def cell_probabilities(self, image: np.ndarray) -> np.ndarray:
        """Per-cell class probabilities (rows, cols, num_classes + 1)."""
        return self.prototypes.probabilities(self.backbone_features(image))

    def predict(self, image: np.ndarray) -> Prediction:
        image = validate_image(image)
        probabilities = self.cell_probabilities(image)
        return decode_cell_probabilities(
            probabilities, self.config, (image.shape[0], image.shape[1])
        )

    def backbone_features_batch(self, images: np.ndarray) -> np.ndarray:
        """Batched :meth:`backbone_features`; returns (B, rows, cols, dim).

        Performs the same smoothing/context operations as the single-image
        path on a stacked feature tensor, so results per image are
        bit-identical.
        """
        images = validate_image_batch(images)
        features = self.extractor.batch(images)
        if self.local_smoothing > 1:
            smoothed = box_filter_batch(features, self.local_smoothing)
            features = 0.6 * features + 0.4 * smoothed
        if self.global_context_weight > 0:
            flat = features.reshape(features.shape[0], -1, features.shape[3])
            global_mean = flat.mean(axis=1)
            features = features - self.global_context_weight * global_mean[:, None, None, :]
        return features

    def cell_probabilities_batch(self, images: np.ndarray) -> np.ndarray:
        """Batched per-cell class probabilities (B, rows, cols, classes + 1)."""
        return self.prototypes.probabilities(self.backbone_features_batch(images))

    def predict_batch(self, images: np.ndarray) -> list[Prediction]:
        """Vectorised batch prediction, processed in cache-friendly chunks."""
        images = validate_image_batch(images)
        image_shape = (images.shape[1], images.shape[2])
        chunk = max(1, int(self.batch_chunk))
        predictions: list[Prediction] = []
        for start in range(0, images.shape[0], chunk):
            probabilities = self.cell_probabilities_batch(images[start : start + chunk])
            predictions.extend(
                decode_cell_probabilities(grid, self.config, image_shape)
                for grid in probabilities
            )
        return predictions
