"""Decoding per-cell class probabilities into bounding boxes.

Both simulated detectors produce a grid of per-cell class probabilities
(the last channel being background).  Decoding turns that grid into boxes:

1. every cell whose foreground probability exceeds the objectness threshold
   becomes a *seed*,
2. around each seed, a window of cells supporting the same class is used to
   estimate the box centre and extent via weighted first/second moments,
3. greedy same-class non-maximum suppression removes duplicates.

The moment-based extent makes the decoded boxes respond *continuously* to
probability changes, which is what lets the attack produce the paper's
"bounding box changes its size" effect (Fig. 4) rather than only hard
class flips.

Three implementations are provided.  :func:`decode_cell_probabilities_loop`
is the original per-seed Python loop, kept as the executable reference.
:func:`decode_cell_probabilities_vectorised` (and its population form
:func:`decode_cell_probabilities_batch`) vectorises the moment stage: all
seed windows of one shape are gathered into a single contiguous
``(num_seeds, h, w)`` stack and reduced with batched NumPy operations.
:func:`decode_cell_probabilities` — the production single-grid entry point —
dispatches between the two by seed count: the vectorised gather machinery
has a fixed setup cost (sort, group-by, fancy indexing) that only amortises
above :data:`SCALAR_FALLBACK_SEEDS` seeds (measured crossover ~8 on the
benchmark grids), and below it the loop is faster.  Both sides of the
dispatch are bit-identical, so the cutover is invisible in the results.

The vectorised decode is **bit-identical** to the loop, by construction:

* seed windows are grouped by their *clipped* shape instead of being
  zero-padded to ``(2W+1, 2W+1)`` — padding preserves the moments as real
  numbers but not as floats (NumPy's pairwise summation associates the
  non-zero terms differently once zeros are interleaved), whereas reducing
  a contiguous stack of same-shape windows over its trailing axes performs
  exactly the per-window reduction the scalar loop performs,
* seeds are ordered by a *stable* descending objectness sort (ties keep
  row-major grid order), so the decode is deterministic and the batched
  per-grid ordering (one stable ``lexsort`` over ``(grid, -objectness)``)
  matches the single-grid ordering exactly,
* the NMS stage consumes the same boxes in the same order, and the
  vectorised NMS is itself bit-identical to the greedy reference (see
  :mod:`repro.detection.nms`).

The decode parity suites (``tests/property/test_properties_decode.py``)
pin all of this down on hypothesis-generated grids.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.detection import nms as _nms
from repro.detection.boxes import BoundingBox, clip_box_to_image
from repro.detection.prediction import Prediction

if TYPE_CHECKING:  # imported for typing only; base.py imports this module
    from repro.detectors.base import DetectorConfig

#: Window cells whose weight falls below this fraction of the window's
#: maximum weight are zeroed before the moments are taken; weakly
#: supporting neighbours would otherwise inflate the box extent.
SUPPORT_CUTOFF = 0.4

#: Minimum total support weight for a seed to produce a box at all.
MIN_TOTAL_WEIGHT = 1e-12

#: Seed count at or below which the single-grid decode dispatches to the
#: per-seed loop: the vectorised path's setup cost (stable sort, shape
#: group-by, fancy-index gathers) only amortises above ~8 seeds.
SCALAR_FALLBACK_SEEDS = 8


def decode_cell_probabilities(
    probabilities: np.ndarray,
    config: "DetectorConfig",
    image_shape: tuple[int, int],
) -> Prediction:
    """Decode a (rows, cols, num_classes + 1) probability grid into boxes.

    Dispatches by seed count: grids with at most
    :data:`SCALAR_FALLBACK_SEEDS` seeds take the per-seed loop (whose
    per-seed cost is lower than the vectorised path's fixed setup), all
    others the vectorised path.  The two are bit-identical, so the dispatch
    only affects speed.

    Parameters
    ----------
    probabilities:
        Per-cell class probabilities; the last channel is background.
    config:
        Detector configuration (cell size, thresholds, decode window).
    image_shape:
        ``(image_length, image_width)`` in pixels, used to clip boxes.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 3:
        raise ValueError("probabilities must have shape (rows, cols, classes + 1)")
    if probabilities.shape[-1] < 2:
        raise ValueError("probabilities must carry at least one foreground class")
    objectness = 1.0 - probabilities[:, :, -1]
    seed_rows, seed_cols = np.where(objectness > config.objectness_threshold)
    if seed_rows.size <= SCALAR_FALLBACK_SEEDS:
        # The seed set is handed straight to the loop body, so dispatching
        # costs one integer comparison over running the loop directly.
        return _decode_seeds_loop(
            probabilities, objectness, seed_rows, seed_cols, config, image_shape
        )
    return _decode_grids(
        probabilities[None, ...],
        config,
        image_shape,
        objectness=objectness[None, ...],
        seeds=(np.zeros_like(seed_rows), seed_rows, seed_cols),
    )[0]


def decode_cell_probabilities_vectorised(
    probabilities: np.ndarray,
    config: "DetectorConfig",
    image_shape: tuple[int, int],
) -> Prediction:
    """Single-grid decode through the vectorised path, regardless of seed
    count.  The parity suites use this to pin the vectorised core against
    the reference loop even on grids small enough that the production
    :func:`decode_cell_probabilities` would dispatch to the loop."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 3:
        raise ValueError("probabilities must have shape (rows, cols, classes + 1)")
    return _decode_grids(probabilities[None, ...], config, image_shape)[0]


def decode_cell_probabilities_batch(
    probabilities: np.ndarray,
    config: "DetectorConfig",
    image_shape: tuple[int, int],
) -> list[Prediction]:
    """Decode a (N, rows, cols, num_classes + 1) population of grids.

    One call replaces N :func:`decode_cell_probabilities` calls: the seeds
    of every grid are gathered and reduced together (each output element of
    a trailing-axes reduction only ever reads its own window, so stacking
    more grids cannot change any per-seed result), then NMS runs per grid.
    Entry ``i`` of the returned list is bit-identical to decoding grid ``i``
    on its own.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 4:
        raise ValueError(
            "probabilities must have shape (N, rows, cols, classes + 1)"
        )
    return _decode_grids(probabilities, config, image_shape)


def _decode_grids(
    stack: np.ndarray,
    config: "DetectorConfig",
    image_shape: tuple[int, int],
    objectness: np.ndarray | None = None,
    seeds: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> list[Prediction]:
    """Shared vectorised core: decode a float64 (N, rows, cols, C+1) stack.

    ``objectness`` and ``seeds`` (``grid_idx, seed_rows, seed_cols`` in
    row-major grid order, as :func:`np.nonzero` returns them) let the
    adaptive dispatcher hand over the full-grid scan it already performed
    instead of recomputing it here.
    """
    count, rows, cols, channels = stack.shape
    if channels < 2:
        raise ValueError("probabilities must carry at least one foreground class")
    num_classes = channels - 1
    cell = config.cell

    if objectness is None:
        objectness = 1.0 - stack[:, :, :, -1]
    class_probs = stack[:, :, :, :num_classes]

    if seeds is None:
        seeds = np.nonzero(objectness > config.objectness_threshold)
    grid_idx, seed_rows, seed_cols = seeds
    if grid_idx.size == 0:
        return [Prediction.empty() for _ in range(count)]

    # Process strongest seeds first so NMS keeps the best-supported boxes.
    # The sort is grid-major and *stable*: equal-objectness seeds keep their
    # row-major grid order, making the decode deterministic under ties and
    # identical between the single-grid and batched entry points.
    seed_objectness = objectness[grid_idx, seed_rows, seed_cols]
    order = np.lexsort((-seed_objectness, grid_idx))
    grid_idx = grid_idx[order]
    seed_rows = seed_rows[order]
    seed_cols = seed_cols[order]
    num_seeds = grid_idx.size

    class_ids = np.argmax(class_probs[grid_idx, seed_rows, seed_cols, :], axis=-1)
    scores = class_probs[grid_idx, seed_rows, seed_cols, class_ids]

    window = config.decode_window
    row_lo = np.maximum(0, seed_rows - window)
    row_hi = np.minimum(rows, seed_rows + window + 1)
    col_lo = np.maximum(0, seed_cols - window)
    col_hi = np.minimum(cols, seed_cols + window + 1)
    heights = row_hi - row_lo
    widths = col_hi - col_lo

    row_centers = (np.arange(rows) + 0.5) * cell
    col_centers = (np.arange(cols) + 0.5) * cell

    total = np.empty(num_seeds, dtype=np.float64)
    center_x = np.empty(num_seeds, dtype=np.float64)
    center_y = np.empty(num_seeds, dtype=np.float64)
    var_x = np.empty(num_seeds, dtype=np.float64)
    var_y = np.empty(num_seeds, dtype=np.float64)

    # Group seeds by clipped window shape.  Interior seeds — the vast
    # majority on any non-trivial grid — share the full (2W+1, 2W+1) shape
    # and reduce in one stack; border seeds form a handful of small groups.
    shape_key = heights * (2 * window + 2) + widths
    for key in np.unique(shape_key):
        members = np.nonzero(shape_key == key)[0]
        height = int(heights[members[0]])
        width = int(widths[members[0]])
        window_rows = row_lo[members][:, None] + np.arange(height)[None, :]
        window_cols = col_lo[members][:, None] + np.arange(width)[None, :]
        gather_grid = grid_idx[members][:, None, None]
        gather_rows = window_rows[:, :, None]
        gather_cols = window_cols[:, None, :]

        local_class = class_probs[
            gather_grid, gather_rows, gather_cols, class_ids[members][:, None, None]
        ]
        local_object = objectness[gather_grid, gather_rows, gather_cols]
        weights = local_class * local_object
        # Keep only the cells that clearly support this detection.
        cutoff = SUPPORT_CUTOFF * weights.max(axis=(1, 2))
        weights = np.where(weights >= cutoff[:, None, None], weights, 0.0)
        group_total = weights.sum(axis=(1, 2))
        # Seeds below the weight floor are dropped after the loop; divide by
        # 1 in their lanes only to keep the moment arithmetic warning-free.
        safe_total = np.where(group_total > MIN_TOTAL_WEIGHT, group_total, 1.0)

        local_rows = row_centers[window_rows][:, :, None]
        local_cols = col_centers[window_cols][:, None, :]
        group_cx = (weights * local_rows).sum(axis=(1, 2)) / safe_total
        group_cy = (weights * local_cols).sum(axis=(1, 2)) / safe_total
        group_vx = (
            weights * (local_rows - group_cx[:, None, None]) ** 2
        ).sum(axis=(1, 2)) / safe_total
        group_vy = (
            weights * (local_cols - group_cy[:, None, None]) ** 2
        ).sum(axis=(1, 2)) / safe_total

        total[members] = group_total
        center_x[members] = group_cx
        center_y[members] = group_cy
        var_x[members] = group_vx
        var_y[members] = group_vy

    # sqrt(12 * var) is the extent of a uniform distribution with that
    # variance; one extra cell accounts for the within-cell spread.
    lengths = np.sqrt(12.0 * var_x) + cell
    box_widths = np.sqrt(12.0 * var_y) + cell

    grid_boxes: list[list[BoundingBox]] = [[] for _ in range(count)]
    for index in np.nonzero(total > MIN_TOTAL_WEIGHT)[0]:
        box = BoundingBox(
            cl=int(class_ids[index]),
            x=float(center_x[index]),
            y=float(center_y[index]),
            l=float(lengths[index]),
            w=float(box_widths[index]),
            score=float(scores[index]),
        )
        clipped = clip_box_to_image(box, image_shape[0], image_shape[1])
        if clipped is not None:
            grid_boxes[grid_idx[index]].append(clipped)

    return [
        _nms.non_max_suppression(
            boxes,
            iou_threshold=config.nms_iou_threshold,
            class_agnostic=config.class_agnostic_nms,
        )
        for boxes in grid_boxes
    ]


def decode_cell_probabilities_loop(
    probabilities: np.ndarray,
    config: "DetectorConfig",
    image_shape: tuple[int, int],
) -> Prediction:
    """Reference per-seed decode loop (the original implementation).

    Kept executable so the parity suites can assert the vectorised decode
    against it bit for bit; the only change from the original is the
    ``kind="stable"`` seed sort, which makes tied-objectness ordering
    deterministic (the unstable quicksort it replaces could order tied
    seeds either way between runs of different NumPy builds).
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 3:
        raise ValueError("probabilities must have shape (rows, cols, classes + 1)")
    if probabilities.shape[-1] < 2:
        raise ValueError("probabilities must carry at least one foreground class")
    objectness = 1.0 - probabilities[:, :, -1]
    seed_rows, seed_cols = np.where(objectness > config.objectness_threshold)
    return _decode_seeds_loop(
        probabilities, objectness, seed_rows, seed_cols, config, image_shape
    )


def _decode_seeds_loop(
    probabilities: np.ndarray,
    objectness: np.ndarray,
    seed_rows: np.ndarray,
    seed_cols: np.ndarray,
    config: "DetectorConfig",
    image_shape: tuple[int, int],
) -> Prediction:
    """Per-seed loop body shared by the reference entry point and the
    adaptive dispatcher (which has already computed the seed set)."""
    rows, cols, channels = probabilities.shape
    num_classes = channels - 1
    cell = config.cell

    class_probs = probabilities[:, :, :num_classes]

    if seed_rows.size == 0:
        return Prediction.empty()

    # Process strongest seeds first so NMS keeps the best-supported boxes;
    # the stable sort keeps row-major order for tied objectness values.
    order = np.argsort(-objectness[seed_rows, seed_cols], kind="stable")
    seed_rows, seed_cols = seed_rows[order], seed_cols[order]

    row_centers = (np.arange(rows) + 0.5) * cell
    col_centers = (np.arange(cols) + 0.5) * cell

    boxes: list[BoundingBox] = []
    window = config.decode_window
    for seed_row, seed_col in zip(seed_rows, seed_cols):
        class_id = int(np.argmax(class_probs[seed_row, seed_col]))

        row_lo, row_hi = max(0, seed_row - window), min(rows, seed_row + window + 1)
        col_lo, col_hi = max(0, seed_col - window), min(cols, seed_col + window + 1)

        local_class = class_probs[row_lo:row_hi, col_lo:col_hi, class_id]
        local_object = objectness[row_lo:row_hi, col_lo:col_hi]
        weights = local_class * local_object
        # Keep only the cells that clearly support this detection; weakly
        # supporting neighbours would otherwise inflate the box extent.
        weights = np.where(weights >= SUPPORT_CUTOFF * weights.max(), weights, 0.0)
        total = weights.sum()
        if total <= MIN_TOTAL_WEIGHT:
            continue

        local_rows = row_centers[row_lo:row_hi][:, None]
        local_cols = col_centers[col_lo:col_hi][None, :]
        center_x = float((weights * local_rows).sum() / total)
        center_y = float((weights * local_cols).sum() / total)
        var_x = float((weights * (local_rows - center_x) ** 2).sum() / total)
        var_y = float((weights * (local_cols - center_y) ** 2).sum() / total)

        # sqrt(12 * var) is the extent of a uniform distribution with that
        # variance; one extra cell accounts for the within-cell spread.
        length = float(np.sqrt(12.0 * var_x) + cell)
        width = float(np.sqrt(12.0 * var_y) + cell)
        score = float(class_probs[seed_row, seed_col, class_id])

        box = BoundingBox(
            cl=class_id, x=center_x, y=center_y, l=length, w=width, score=score
        )
        clipped = clip_box_to_image(box, image_shape[0], image_shape[1])
        if clipped is not None:
            boxes.append(clipped)

    return _nms.non_max_suppression(
        boxes,
        iou_threshold=config.nms_iou_threshold,
        class_agnostic=config.class_agnostic_nms,
    )
