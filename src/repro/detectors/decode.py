"""Decoding per-cell class probabilities into bounding boxes.

Both simulated detectors produce a grid of per-cell class probabilities
(the last channel being background).  Decoding turns that grid into boxes:

1. every cell whose foreground probability exceeds the objectness threshold
   becomes a *seed*,
2. around each seed, a window of cells supporting the same class is used to
   estimate the box centre and extent via weighted first/second moments,
3. greedy same-class non-maximum suppression removes duplicates.

The moment-based extent makes the decoded boxes respond *continuously* to
probability changes, which is what lets the attack produce the paper's
"bounding box changes its size" effect (Fig. 4) rather than only hard
class flips.
"""

from __future__ import annotations

import numpy as np

from repro.detection.boxes import BoundingBox, clip_box_to_image
from repro.detection.nms import non_max_suppression
from repro.detection.prediction import Prediction
from repro.detectors.base import DetectorConfig


def decode_cell_probabilities(
    probabilities: np.ndarray,
    config: DetectorConfig,
    image_shape: tuple[int, int],
) -> Prediction:
    """Decode a (rows, cols, num_classes + 1) probability grid into boxes.

    Parameters
    ----------
    probabilities:
        Per-cell class probabilities; the last channel is background.
    config:
        Detector configuration (cell size, thresholds, decode window).
    image_shape:
        ``(image_length, image_width)`` in pixels, used to clip boxes.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 3:
        raise ValueError("probabilities must have shape (rows, cols, classes + 1)")
    rows, cols, channels = probabilities.shape
    num_classes = channels - 1
    cell = config.cell

    objectness = 1.0 - probabilities[:, :, -1]
    class_probs = probabilities[:, :, :num_classes]

    seed_rows, seed_cols = np.where(objectness > config.objectness_threshold)
    if seed_rows.size == 0:
        return Prediction.empty()

    # Process strongest seeds first so NMS keeps the best-supported boxes.
    order = np.argsort(-objectness[seed_rows, seed_cols])
    seed_rows, seed_cols = seed_rows[order], seed_cols[order]

    row_centers = (np.arange(rows) + 0.5) * cell
    col_centers = (np.arange(cols) + 0.5) * cell

    boxes: list[BoundingBox] = []
    window = config.decode_window
    for seed_row, seed_col in zip(seed_rows, seed_cols):
        class_id = int(np.argmax(class_probs[seed_row, seed_col]))

        row_lo, row_hi = max(0, seed_row - window), min(rows, seed_row + window + 1)
        col_lo, col_hi = max(0, seed_col - window), min(cols, seed_col + window + 1)

        local_class = class_probs[row_lo:row_hi, col_lo:col_hi, class_id]
        local_object = objectness[row_lo:row_hi, col_lo:col_hi]
        weights = local_class * local_object
        # Keep only the cells that clearly support this detection; weakly
        # supporting neighbours would otherwise inflate the box extent.
        weights = np.where(weights >= 0.4 * weights.max(), weights, 0.0)
        total = weights.sum()
        if total <= 1e-12:
            continue

        local_rows = row_centers[row_lo:row_hi][:, None]
        local_cols = col_centers[col_lo:col_hi][None, :]
        center_x = float((weights * local_rows).sum() / total)
        center_y = float((weights * local_cols).sum() / total)
        var_x = float((weights * (local_rows - center_x) ** 2).sum() / total)
        var_y = float((weights * (local_cols - center_y) ** 2).sum() / total)

        # sqrt(12 * var) is the extent of a uniform distribution with that
        # variance; one extra cell accounts for the within-cell spread.
        length = float(np.sqrt(12.0 * var_x) + cell)
        width = float(np.sqrt(12.0 * var_y) + cell)
        score = float(class_probs[seed_row, seed_col, class_id])

        box = BoundingBox(
            cl=class_id, x=center_x, y=center_y, l=length, w=width, score=score
        )
        clipped = clip_box_to_image(box, image_shape[0], image_shape[1])
        if clipped is not None:
            boxes.append(clipped)

    return non_max_suppression(
        boxes,
        iou_threshold=config.nms_iou_threshold,
        class_agnostic=config.class_agnostic_nms,
    )
