"""Detector interface and shared configuration."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.detection.prediction import Prediction
from repro.detectors import decode as cell_decode
from repro.detectors.activation_cache import (
    CleanActivations,
    DeltaActivations,
    DeltaActivationStore,
)
from repro.nn.incremental import (
    BBox,
    bbox_area,
    bbox_area_fraction,
    bbox_intersection,
    bbox_is_empty,
    bbox_union,
    frames_differ_bbox,
    mask_nonzero_bbox,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.detectors.fidelity import FidelityConfig

#: A "splice item" of the generalised windowed hook: the population index,
#: the pixel window to recompute, the source grids to splice into, and the
#: prediction to return when the window touches no grid cell.
SpliceItem = tuple[int, BBox, dict, Prediction]


@dataclass(frozen=True)
class DetectorConfig:
    """Configuration shared by both simulated detector families.

    Attributes
    ----------
    cell:
        Pixel side length of one grid cell / patch token.
    num_classes:
        Number of foreground classes.
    objectness_threshold:
        A cell seeds a detection only when its foreground probability
        exceeds this value.
    nms_iou_threshold:
        IoU above which overlapping detections are merged.
    class_agnostic_nms:
        When True (default) overlapping detections suppress each other
        regardless of class, which removes duplicate boxes of confusable
        classes (car vs van) on the same object.
    decode_window:
        Half-width (in cells) of the neighbourhood used to estimate the box
        extent around a seed cell.
    score_temperature:
        Softmax temperature applied to prototype-distance logits; smaller is
        sharper.  ``None`` means "use the value calibrated during training".
    background_bias:
        Additive bias on the background logit; larger values make the
        detector more conservative (fewer detections).
    """

    cell: int = 8
    num_classes: int = 5
    objectness_threshold: float = 0.7
    nms_iou_threshold: float = 0.3
    class_agnostic_nms: bool = True
    decode_window: int = 2
    score_temperature: float | None = None
    background_bias: float = 0.0


class Detector(abc.ABC):
    """Abstract object detector: image in, :class:`Prediction` out.

    The attack treats detectors as black boxes — only :meth:`predict` is
    required — but the simulated implementations also expose their per-cell
    class-probability maps and backbone features for the grey-box analysis
    utilities (feature heatmaps).
    """

    #: Short architecture name, e.g. ``"single_stage"`` or ``"transformer"``.
    architecture: str = "abstract"

    #: Images per internal chunk of the vectorised batch path.  Small chunks
    #: keep the attention/softmax temporaries inside the CPU caches, which
    #: measures faster than one monolithic batch at these image sizes; the
    #: results are bit-identical for every chunk size.
    batch_chunk: int = 2

    #: Whether :meth:`clean_activations` returns a usable cache (i.e. the
    #: detector implements a windowed dirty-region forward pass).
    supports_incremental: bool = False

    #: Whether the detector implements :meth:`_predict_delta_spliced_batch`
    #: — the generalised windowed hook that can splice against an evaluated
    #: ancestor's grids instead of the clean bundle (cross-generation delta
    #: reuse).  Third-party detectors that only override the legacy
    #: ``_predict_delta_windowed*`` hooks keep working: ancestry is simply
    #: ignored for them.
    supports_delta_reuse: bool = False

    #: Dirty-bounding-box area fraction (of the image plane) above which the
    #: delta path routes a mask through the dense batched forward pass
    #: instead of the windowed one.  Near-full windows pay the windowed
    #: path's gather/splice overhead without skipping much work; both paths
    #: are bit-identical, so this only affects speed.
    incremental_dense_fraction: float = 0.5

    #: Chunk size for the batched tail stages of the windowed delta path.
    #: Spliced feature grids are two orders of magnitude smaller than full
    #: images, so much larger chunks fit in cache than
    #: :attr:`batch_chunk` allows; results are bit-identical for every
    #: chunk size (the predict_batch parity suite pins that property).
    delta_batch_chunk: int = 16

    def __init__(self, config: DetectorConfig | None = None, seed: int = 0) -> None:
        self.config = config if config is not None else DetectorConfig()
        self.seed = int(seed)

    @property
    def name(self) -> str:
        """Unique human-readable detector name (architecture + seed)."""
        return f"{self.architecture}-seed{self.seed}"

    @abc.abstractmethod
    def predict(self, image: np.ndarray) -> Prediction:
        """Run the detector on an RGB image in ``[0, 255]``."""

    def predict_batch(self, images: np.ndarray) -> list[Prediction]:
        """Run the detector on a stack of images ``(B, L, W, 3)``.

        This generic fallback loops :meth:`predict`, so any third-party
        detector satisfies the batch API for free.  The simulated detectors
        override it with a vectorised forward pass whose per-image results
        are bit-identical to :meth:`predict` (enforced by the parity tests);
        the NSGA-II population evaluator relies on that equivalence.
        """
        images = validate_image_batch(images)
        return [self.predict(image) for image in images]

    def predict_batch_at(
        self, images: np.ndarray, fidelity: "FidelityConfig | None" = None
    ) -> list[Prediction]:
        """Batch prediction at a requested evaluation fidelity.

        A fidelity is a *permission to approximate*, never an obligation:
        the generic base ignores it and answers exactly (exact results are
        within any error budget), so third-party detectors support the
        fidelity API for free.  Architectures that implement cheap modes
        (see :mod:`repro.detectors.fidelity`) override this.
        """
        return self.predict_batch(images)

    def clean_activations(self, image: np.ndarray) -> CleanActivations | None:
        """Precompute the clean scene's activations for the delta path.

        Detectors that support incremental inference return a
        :class:`~repro.detectors.activation_cache.CleanActivations` bundle
        (cached intermediate tensors plus the decoded clean prediction);
        the generic base returns ``None``, which makes every delta call
        fall back to a full recompute.
        """
        return None

    def clean_activations_delta(
        self,
        image: np.ndarray,
        previous: CleanActivations | None,
        dirty_bound: BBox | None = None,
    ) -> tuple[CleanActivations | None, bool]:
        """Clean bundle of ``image`` derived from a previous frame's bundle.

        The temporal form of :meth:`clean_activations`: the inter-frame
        diff of a streaming sequence is a dirty region like any mask, so
        frame t's clean activations are recovered by splicing only the
        changed window into frame t−1's cached grids.  ``dirty_bound``
        optionally restricts the diff scan to a window known to contain
        every changed pixel (e.g. the moving-object union bound derived
        from consecutive scene specs); the exact diff is still computed,
        so a loose bound never changes the result.

        Returns ``(bundle, used_incremental)`` where ``used_incremental``
        reports whether the bundle was derived through the windowed splice
        (a *frame hit*) or rebuilt densely (``previous`` missing, shapes
        differing, the diff too large to profit, or the architecture not
        supporting the spliced hook).  Either way the bundle is
        bit-identical to :meth:`clean_activations` on ``image`` — the
        splice runs with an all-zero mask, so the recomputed window sees
        exactly the new frame's clean pixels, and identical frames share
        the previous bundle's tensors outright (bundles are read-only by
        contract).
        """
        image = validate_image(image)
        if (
            previous is None
            or not self.supports_incremental
            or not self.supports_delta_reuse
        ):
            return self.clean_activations(image), False
        clean_image = np.clip(image + 0.0, 0.0, 255.0)
        if previous.clean_image.shape != clean_image.shape:
            return self.clean_activations(image), False
        diff = frames_differ_bbox(previous.clean_image, clean_image, within=dirty_bound)
        if bbox_is_empty(diff):
            return (
                CleanActivations(
                    clean_image=clean_image,
                    prediction=previous.prediction,
                    tensors=previous.tensors,
                ),
                True,
            )
        plane = (image.shape[0], image.shape[1])
        if bbox_area_fraction(diff, plane) > self.incremental_dense_fraction:
            return self.clean_activations(image), False
        predictions, states = self._predict_delta_spliced_batch(
            clean_image,
            np.zeros((1,) + clean_image.shape),
            [(0, diff, previous.tensors, previous.prediction)],
        )
        tensors = previous.tensors if states[0] is None else states[0]
        return (
            CleanActivations(
                clean_image=clean_image,
                prediction=predictions[0],
                tensors=tensors,
            ),
            True,
        )

    def predict_delta(
        self,
        image: np.ndarray,
        mask: np.ndarray,
        dirty_bound: BBox | None = None,
        clean: CleanActivations | None = None,
        ancestry: dict | None = None,
    ) -> Prediction:
        """Prediction on ``clip(image + mask, 0, 255)``, bit-identical to
        :meth:`predict` on the perturbed image.

        With a ``clean`` activation bundle (from :meth:`clean_activations`)
        the detector recomputes only the mask's dirty region — the nonzero
        bounding box dilated by each stage's receptive field — and splices
        it into the cached clean activations.  ``dirty_bound`` optionally
        restricts the nonzero scan to a window known to contain every
        nonzero pixel (e.g. the O(1) bound propagated by the NSGA-II
        operators); the exact box is still computed, so a loose bound never
        changes the result.  Without ``clean`` the perturbed image is
        simply run through the full forward pass.

        ``ancestry`` opts the mask into cross-generation reuse against the
        bundle's :class:`DeltaActivationStore` (see
        :meth:`predict_delta_batch` for the dict shape); every route stays
        bit-identical, so ancestry only affects speed.
        """
        image = validate_image(image)
        mask = self._validate_mask(image, mask)
        if clean is not None and self.supports_incremental:
            pixel_bbox = mask_nonzero_bbox(mask, within=dirty_bound)
            if bbox_is_empty(pixel_bbox):
                return clean.prediction
            plane = (image.shape[0], image.shape[1])
            delta_store = clean.delta
            if (
                ancestry is not None
                and self.supports_delta_reuse
                and delta_store is not None
            ):
                outcome, payload = self._ancestor_splice(
                    mask, pixel_bbox, plane, delta_store, ancestry
                )
                if outcome == "hit":
                    return payload
                if outcome == "splice":
                    rel_bbox, tensors, fallback = payload
                    item: SpliceItem = (0, rel_bbox, tensors, fallback)
                elif (
                    bbox_area_fraction(pixel_bbox, plane)
                    <= self.incremental_dense_fraction
                ):
                    item = (0, pixel_bbox, clean.tensors, clean.prediction)
                else:
                    item = None  # type: ignore[assignment]
                if item is not None:
                    spliced, states = self._predict_delta_spliced_batch(
                        image, mask[None, ...], [item]
                    )
                    self._store_delta(
                        delta_store,
                        ancestry.get("fingerprint"),
                        mask,
                        pixel_bbox,
                        spliced[0],
                        states[0],
                    )
                    return spliced[0]
            elif (
                bbox_area_fraction(pixel_bbox, plane)
                <= self.incremental_dense_fraction
            ):
                return self._predict_delta_windowed(image, mask, pixel_bbox, clean)
        return self.predict(np.clip(image + mask, 0.0, 255.0))

    def predict_delta_batch(
        self,
        image: np.ndarray,
        masks: np.ndarray,
        dirty_bounds: list[BBox | None] | None = None,
        clean: CleanActivations | None = None,
        ancestry: list[dict | None] | None = None,
        fidelity: "FidelityConfig | None" = None,
    ) -> list[Prediction]:
        """Per-mask predictions on ``clip(image + masks[b], 0, 255)``.

        The population form of :meth:`predict_delta`: each mask is routed
        by its dirty-region size — empty regions answer from the cached
        clean prediction, sparse regions go through the windowed recompute
        (batched over the population where the architecture allows), and
        dense regions fall back to the stacked :meth:`predict_batch` fast
        path.  All three routes are bit-identical to :meth:`predict` per
        mask, so the routing only affects speed.

        ``ancestry`` (one dict or ``None`` per mask) opts a mask into
        cross-generation reuse against the bundle's delta store.  The dict
        carries ``"fingerprint"`` (the mask's own provenance key — evaluated
        grids are stored under it), ``"ancestor"`` (the key of the evaluated
        relative whose grids to splice against) and ``"diff_bound"`` (a bbox
        covering every pixel where the two masks differ, or ``None`` for
        unknown).  When the ancestor's grids are stored, only the *relative*
        dirty window (the exact diff, rescanned) is re-spliced — and a mask
        bit-identical to its ancestor answers from the stored prediction
        outright.  The bound is only a scan window: the exact diff is always
        recomputed, so a loose bound never changes the result, and every
        route remains bit-identical to :meth:`predict`.

        ``fidelity`` opts the whole batch into approximate evaluation
        (windowed attention / reduced precision; see
        :mod:`repro.detectors.fidelity`).  Exact (or ``None``) fidelity is
        the unchanged bit-identical path.  Approximate fidelities disable
        cross-generation reuse for the batch: the delta store's spliced
        grids are exact and may be reused later at exact fidelity, but its
        stored *predictions* (served on an empty relative diff) are not,
        so approximate batches never touch it in either direction.
        """
        image = validate_image(image)
        if fidelity is not None and fidelity.is_exact:
            fidelity = None
        if fidelity is not None:
            ancestry = None
        masks = np.asarray(masks, dtype=np.float64)
        if masks.ndim != 4 or masks.shape[1:] != image.shape:
            raise ValueError(
                f"expected masks of shape (B, *{image.shape}), got {masks.shape}"
            )
        count = masks.shape[0]
        if dirty_bounds is None:
            dirty_bounds = [None] * count
        if len(dirty_bounds) != count:
            raise ValueError(
                f"expected {count} dirty bounds, got {len(dirty_bounds)}"
            )
        delta_store: DeltaActivationStore | None = None
        if (
            ancestry is not None
            and clean is not None
            and self.supports_incremental
            and self.supports_delta_reuse
        ):
            if len(ancestry) != count:
                raise ValueError(
                    f"expected {count} ancestry entries, got {len(ancestry)}"
                )
            delta_store = clean.delta
        predictions: list[Prediction | None] = [None] * count
        sparse: list[tuple[int, BBox]] = []
        spliced_items: list[SpliceItem] = []
        store_meta: dict[int, tuple[bytes | None, BBox]] = {}
        dense: list[int] = []
        if clean is not None and self.supports_incremental:
            plane = (image.shape[0], image.shape[1])
            for index in range(count):
                bbox = mask_nonzero_bbox(masks[index], within=dirty_bounds[index])
                if bbox_is_empty(bbox):
                    predictions[index] = clean.prediction
                    continue
                if delta_store is not None:
                    info = ancestry[index]  # type: ignore[index]
                    outcome, payload = self._ancestor_splice(
                        masks[index], bbox, plane, delta_store, info
                    )
                    if outcome == "hit":
                        predictions[index] = payload
                        continue
                    if outcome == "splice":
                        rel_bbox, tensors, fallback = payload
                        spliced_items.append((index, rel_bbox, tensors, fallback))
                        store_meta[index] = (
                            info.get("fingerprint") if info else None,
                            bbox,
                        )
                        continue
                if bbox_area_fraction(bbox, plane) <= self.incremental_dense_fraction:
                    if delta_store is not None:
                        info = ancestry[index]  # type: ignore[index]
                        spliced_items.append(
                            (index, bbox, clean.tensors, clean.prediction)
                        )
                        store_meta[index] = (
                            info.get("fingerprint") if info else None,
                            bbox,
                        )
                    else:
                        sparse.append((index, bbox))
                else:
                    dense.append(index)
        else:
            dense = list(range(count))
        if dense:
            stacked = np.clip(image[None, ...] + masks[dense], 0.0, 255.0)
            batch = (
                self.predict_batch(stacked)
                if fidelity is None
                else self.predict_batch_at(stacked, fidelity)
            )
            for index, prediction in zip(dense, batch):
                predictions[index] = prediction
        if sparse:
            # The fidelity kwarg is only forwarded when approximate, so
            # third-party overrides with the pre-fidelity signature keep
            # working on the (default) exact path.
            windowed = (
                self._predict_delta_windowed_batch(image, masks, sparse, clean)
                if fidelity is None
                else self._predict_delta_windowed_batch(
                    image, masks, sparse, clean, fidelity=fidelity
                )
            )
            for (index, _), prediction in zip(sparse, windowed):
                predictions[index] = prediction
        if spliced_items:
            spliced, states = self._predict_delta_spliced_batch(
                image, masks, spliced_items
            )
            for (index, _, _, _), prediction, state in zip(
                spliced_items, spliced, states
            ):
                predictions[index] = prediction
                fingerprint, own_bbox = store_meta[index]
                self._store_delta(
                    delta_store, fingerprint, masks[index], own_bbox, prediction, state
                )
        return predictions  # type: ignore[return-value]

    def _ancestor_splice(
        self,
        mask: np.ndarray,
        bbox: BBox,
        plane: tuple[int, int],
        delta_store: DeltaActivationStore,
        info: dict | None,
    ):
        """Route one mask against its ancestor's stored grids, if cheaper.

        Returns ``("hit", prediction)`` when the mask is bit-identical to
        the stored ancestor (nothing to recompute), ``("splice", (rel_bbox,
        tensors, fallback))`` when re-splicing the exact relative diff
        window into the ancestor's grids beats the clean-bundle splice, and
        ``("none", None)`` otherwise (no usable ancestor, or the relative
        window is not smaller than the mask's own dirty region).
        """
        if info is None:
            return "none", None
        ancestor_key = info.get("ancestor")
        if ancestor_key is None:
            return "none", None
        entry = delta_store.get(ancestor_key)
        if entry is None:
            return "none", None
        window = bbox_intersection(
            info.get("diff_bound"), bbox_union(bbox, entry.pixel_bbox)
        )
        rel_bbox = entry.diff_bbox(mask, window)
        if bbox_is_empty(rel_bbox):
            return "hit", entry.prediction
        if (
            bbox_area(rel_bbox) <= bbox_area(bbox)
            and bbox_area_fraction(rel_bbox, plane) <= self.incremental_dense_fraction
        ):
            return "splice", (rel_bbox, entry.tensors, entry.prediction)
        return "none", None

    def _store_delta(
        self,
        delta_store: DeltaActivationStore | None,
        fingerprint: bytes | None,
        mask: np.ndarray,
        pixel_bbox: BBox,
        prediction: Prediction,
        state: dict | None,
    ) -> None:
        """Memoize one evaluated mask's spliced grids for its descendants.

        ``state`` is the architecture's pre-finalisation spliced grids (or
        ``None`` when the window touched no cell — such masks are not worth
        storing: descendants fall back to the clean splice).  Dense-routed
        masks are never stored either; their grids are not materialised.
        """
        if delta_store is None or fingerprint is None or state is None:
            return
        r0, r1, c0, c1 = pixel_bbox
        delta_store.put(
            fingerprint,
            DeltaActivations(
                mask_window=mask[r0:r1, c0:c1].copy(),
                pixel_bbox=pixel_bbox,
                prediction=prediction,
                tensors=state,
            ),
        )

    def _validate_mask(self, image: np.ndarray, mask: np.ndarray) -> np.ndarray:
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != image.shape:
            raise ValueError(
                f"mask shape {mask.shape} does not match image shape {image.shape}"
            )
        return mask

    def _predict_delta_windowed(
        self,
        image: np.ndarray,
        mask: np.ndarray,
        pixel_bbox: BBox,
        clean: CleanActivations,
    ) -> Prediction:
        """Architecture hook: windowed recompute of one sparse mask.

        Only reached when :attr:`supports_incremental` is True; such
        detectors must override it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares incremental support but does not "
            "implement _predict_delta_windowed"
        )

    def _predict_delta_windowed_batch(
        self,
        image: np.ndarray,
        masks: np.ndarray,
        items: list[tuple[int, BBox]],
        clean: CleanActivations,
        fidelity: "FidelityConfig | None" = None,
    ) -> list[Prediction]:
        """Windowed recompute of the sparse members of a population.

        The generic form loops :meth:`_predict_delta_windowed` and ignores
        ``fidelity`` (approximation is a permission, exact answers are
        always valid); architectures override it to batch the shared tail
        stages (probabilities, attention) across the population and to
        honour approximate fidelities where they implement them.
        """
        return [
            self._predict_delta_windowed(image, masks[index], bbox, clean)
            for index, bbox in items
        ]

    def _predict_delta_spliced_batch(
        self,
        image: np.ndarray,
        masks: np.ndarray,
        items: list[SpliceItem],
    ) -> tuple[list[Prediction], list[dict | None]]:
        """Architecture hook: windowed recompute against explicit sources.

        The generalised form of :meth:`_predict_delta_windowed_batch`: each
        item names the grids to splice into (the clean bundle's tensors or
        an evaluated ancestor's stored grids — both carry the same stage
        names), so the same code path serves first-order and
        cross-generation incremental inference.  Returns the per-item
        predictions plus the per-item *pre-finalisation* spliced grids
        (``None`` when the window touched no cell and the fallback
        prediction was returned) for the caller to memoize.  Only reached
        when :attr:`supports_delta_reuse` is True; such detectors must
        override it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares delta-reuse support but does not "
            "implement _predict_delta_spliced_batch"
        )

    def _decode(
        self, probabilities: np.ndarray, image_shape: tuple[int, int]
    ) -> Prediction:
        """Decode one (rows, cols, classes + 1) probability grid.

        Resolved through the :mod:`repro.detectors.decode` module attribute
        (not an imported name) so the decode-parity harness can swap in the
        reference loop for a whole attack run with one monkeypatch.
        """
        return cell_decode.decode_cell_probabilities(
            probabilities, self.config, image_shape
        )

    def _decode_batch(
        self, probabilities: np.ndarray, image_shape: tuple[int, int]
    ) -> list[Prediction]:
        """Decode a (B, rows, cols, classes + 1) stack of probability grids
        in one vectorised call; entry ``b`` is bit-identical to
        ``self._decode(probabilities[b], image_shape)``."""
        return cell_decode.decode_cell_probabilities_batch(
            probabilities, self.config, image_shape
        )

    @abc.abstractmethod
    def backbone_features(self, image: np.ndarray) -> np.ndarray:
        """Return the processed per-cell feature map (rows, cols, dim)."""

    def __call__(self, image: np.ndarray) -> Prediction:
        return self.predict(image)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}(seed={self.seed})"


def validate_image(image: np.ndarray) -> np.ndarray:
    """Check that ``image`` is an (L, W, 3) array and return it as float64."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected an RGB image of shape (L, W, 3), got {image.shape}")
    return image


def validate_image_batch(images: np.ndarray) -> np.ndarray:
    """Check that ``images`` is a (B, L, W, 3) stack and return it as float64.

    A sequence of (L, W, 3) images of equal shape is stacked automatically.
    """
    images = np.asarray(images, dtype=np.float64)
    if images.ndim == 3 and images.shape[2] == 3:
        images = images[None, ...]
    if images.ndim != 4 or images.shape[3] != 3:
        raise ValueError(
            f"expected an RGB image batch of shape (B, L, W, 3), got {images.shape}"
        )
    return images
