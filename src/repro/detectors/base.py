"""Detector interface and shared configuration."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.detection.prediction import Prediction


@dataclass(frozen=True)
class DetectorConfig:
    """Configuration shared by both simulated detector families.

    Attributes
    ----------
    cell:
        Pixel side length of one grid cell / patch token.
    num_classes:
        Number of foreground classes.
    objectness_threshold:
        A cell seeds a detection only when its foreground probability
        exceeds this value.
    nms_iou_threshold:
        IoU above which overlapping detections are merged.
    class_agnostic_nms:
        When True (default) overlapping detections suppress each other
        regardless of class, which removes duplicate boxes of confusable
        classes (car vs van) on the same object.
    decode_window:
        Half-width (in cells) of the neighbourhood used to estimate the box
        extent around a seed cell.
    score_temperature:
        Softmax temperature applied to prototype-distance logits; smaller is
        sharper.  ``None`` means "use the value calibrated during training".
    background_bias:
        Additive bias on the background logit; larger values make the
        detector more conservative (fewer detections).
    """

    cell: int = 8
    num_classes: int = 5
    objectness_threshold: float = 0.7
    nms_iou_threshold: float = 0.3
    class_agnostic_nms: bool = True
    decode_window: int = 2
    score_temperature: float | None = None
    background_bias: float = 0.0


class Detector(abc.ABC):
    """Abstract object detector: image in, :class:`Prediction` out.

    The attack treats detectors as black boxes — only :meth:`predict` is
    required — but the simulated implementations also expose their per-cell
    class-probability maps and backbone features for the grey-box analysis
    utilities (feature heatmaps).
    """

    #: Short architecture name, e.g. ``"single_stage"`` or ``"transformer"``.
    architecture: str = "abstract"

    #: Images per internal chunk of the vectorised batch path.  Small chunks
    #: keep the attention/softmax temporaries inside the CPU caches, which
    #: measures faster than one monolithic batch at these image sizes; the
    #: results are bit-identical for every chunk size.
    batch_chunk: int = 2

    def __init__(self, config: DetectorConfig | None = None, seed: int = 0) -> None:
        self.config = config if config is not None else DetectorConfig()
        self.seed = int(seed)

    @property
    def name(self) -> str:
        """Unique human-readable detector name (architecture + seed)."""
        return f"{self.architecture}-seed{self.seed}"

    @abc.abstractmethod
    def predict(self, image: np.ndarray) -> Prediction:
        """Run the detector on an RGB image in ``[0, 255]``."""

    def predict_batch(self, images: np.ndarray) -> list[Prediction]:
        """Run the detector on a stack of images ``(B, L, W, 3)``.

        This generic fallback loops :meth:`predict`, so any third-party
        detector satisfies the batch API for free.  The simulated detectors
        override it with a vectorised forward pass whose per-image results
        are bit-identical to :meth:`predict` (enforced by the parity tests);
        the NSGA-II population evaluator relies on that equivalence.
        """
        images = validate_image_batch(images)
        return [self.predict(image) for image in images]

    @abc.abstractmethod
    def backbone_features(self, image: np.ndarray) -> np.ndarray:
        """Return the processed per-cell feature map (rows, cols, dim)."""

    def __call__(self, image: np.ndarray) -> Prediction:
        return self.predict(image)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}(seed={self.seed})"


def validate_image(image: np.ndarray) -> np.ndarray:
    """Check that ``image`` is an (L, W, 3) array and return it as float64."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected an RGB image of shape (L, W, 3), got {image.shape}")
    return image


def validate_image_batch(images: np.ndarray) -> np.ndarray:
    """Check that ``images`` is a (B, L, W, 3) stack and return it as float64.

    A sequence of (L, W, 3) images of equal shape is stacked automatically.
    """
    images = np.asarray(images, dtype=np.float64)
    if images.ndim == 3 and images.shape[2] == 3:
        images = images[None, ...]
    if images.ndim != 4 or images.shape[3] != 3:
        raise ValueError(
            f"expected an RGB image batch of shape (B, L, W, 3), got {images.shape}"
        )
    return images
