"""Clean-scene activation cache for incremental (dirty-region) inference.

The butterfly-effect attack evaluates thousands of perturbation masks
against the *same* clean scene.  Each simulated detector can precompute the
clean scene's intermediate activations once (see
``Detector.clean_activations``) and then answer a perturbed image by
recomputing only the mask's dirty region.  This module provides the shared
cache machinery:

* :class:`CleanActivations` — the per-``(detector, image)`` bundle of
  cached tensors plus the decoded clean prediction;
* :class:`ActivationCacheStore` — a small content-keyed LRU store with a
  size cap, hit/miss/eviction/invalidation counters and explicit
  invalidation, used by the experiment runner to manage per-scene cache
  lifecycle across a models × images sweep;
* :class:`SharedMemoryActivationStore` — the same store with every cached
  tensor placed in a ``multiprocessing.shared_memory`` segment.  The
  persistent worker runtime (:mod:`repro.experiments.persistent`) gives
  each long-lived worker one, so bundle memory lives in named segments the
  parent can audit and reap; segments are refcount-retired on
  eviction/invalidation and explicitly unlinked on shutdown.
* :class:`CacheStats` — an immutable counter snapshot that supports
  differences (per-job/per-model deltas) and merging (summing per-worker
  counters into sweep-level totals across a process pool, where every
  worker owns a private store).

Entries are keyed by the *content digest* of the image (plus the detector
instance), so presenting a new scene can never hit a stale entry — a fresh
image always misses and rebuilds.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.detection.prediction import Prediction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.detectors.base import Detector


def image_digest(image: np.ndarray) -> bytes:
    """Stable content key of an image: dtype, shape and raw bytes."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(image.dtype).encode())
    digest.update(str(image.shape).encode())
    digest.update(np.ascontiguousarray(image).tobytes())
    return digest.digest()


@dataclass(frozen=True)
class CacheStats:
    """Immutable hit/miss/eviction/invalidation counters of a store.

    Snapshots subtract (``after - before`` gives the delta attributable to
    one attack job) and add (merging per-worker or per-model deltas into
    sweep totals), so the experiment engine can report per-model hit rates
    even when jobs fan out over a process pool of private stores.

    ``evictions`` counts cap-driven LRU drops only; ``invalidations``
    counts entries dropped by explicit :meth:`ActivationCacheStore.invalidate`
    calls (per-model lifecycle, shutdown).  Keeping the two separate lets
    persisted provenance distinguish cache pressure from lifecycle churn.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        """Total lookups observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        return self.hits / self.requests if self.requests else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            invalidations=self.invalidations + other.invalidations,
        )

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
            invalidations=self.invalidations - other.invalidations,
        )

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly counters plus the derived hit rate."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }

    @staticmethod
    def merge(parts: "list[CacheStats] | tuple[CacheStats, ...]") -> "CacheStats":
        """Sum a collection of snapshots (empty collection → zero stats)."""
        total = CacheStats()
        for part in parts:
            total = total + part
        return total


@dataclass
class CleanActivations:
    """Cached clean-scene activations of one ``(detector, image)`` pair.

    Attributes
    ----------
    clean_image:
        The canonical clean image ``clip(image + 0, 0, 255)`` — exactly the
        pixel values a zero mask would produce, so splicing against it is
        bit-identical to the full forward pass on the perturbed image.
    prediction:
        The decoded prediction on ``clean_image``; returned directly when a
        mask's dirty region is empty (nothing to recompute).
    tensors:
        Architecture-specific cached stages, e.g. the raw feature grid and
        the smoothed feature grid for the single-stage detector or the raw
        patch tokens for the transformer.
    """

    clean_image: np.ndarray
    prediction: Prediction
    tensors: dict[str, np.ndarray] = field(default_factory=dict)


@dataclass
class _StoreEntry:
    detector: "Detector"  # strong ref: keeps id(detector) stable while cached
    activations: CleanActivations


class ActivationCacheStore:
    """Content-keyed LRU store of :class:`CleanActivations`.

    Keys combine the detector identity with the image content digest, so a
    new scene (or a retrained detector instance) always misses — there are
    no stale hits by construction.  The ``max_entries`` cap bounds memory
    for long models × scenes sweeps; the least recently used entry is
    evicted first.
    """

    def __init__(self, max_entries: int = 4) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = int(max_entries)
        self._entries: dict[tuple[int, bytes], _StoreEntry] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, detector: "Detector", image: np.ndarray) -> CleanActivations | None:
        """The cached activations for ``(detector, image)``, built on miss.

        Returns ``None`` when the detector does not support incremental
        inference (its ``clean_activations`` returns ``None``); nothing is
        stored in that case.
        """
        key = (id(detector), image_digest(image))
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            # Move to the MRU end so the cap evicts the oldest scene first.
            self._entries[key] = self._entries.pop(key)
            return entry.activations
        self.misses += 1
        activations = detector.clean_activations(image)
        if activations is None:
            return None
        activations = self._admit(activations)
        while len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.evictions += 1
        self._entries[key] = _StoreEntry(detector=detector, activations=activations)
        return activations

    def _admit(self, activations: CleanActivations) -> CleanActivations:
        """Hook: transform a freshly built bundle before caching it."""
        return activations

    def _drop(self, key: tuple[int, bytes]) -> None:
        """Hook: remove one entry (eviction or invalidation)."""
        del self._entries[key]

    def invalidate(self, detector: "Detector | None" = None) -> int:
        """Drop entries (all of them, or one detector's); returns the count.

        Explicit drops are counted in ``invalidations`` (not ``evictions``,
        which stays cap-driven only) so persisted provenance reports entry
        turnover completely.
        """
        if detector is None:
            keys = list(self._entries)
        else:
            keys = [key for key in self._entries if key[0] == id(detector)]
        for key in keys:
            self._drop(key)
        self.invalidations += len(keys)
        return len(keys)

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction/invalidation counters plus the entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": len(self._entries),
        }

    def snapshot(self) -> CacheStats:
        """The current counters as an immutable :class:`CacheStats`."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            invalidations=self.invalidations,
        )

    def reset_stats(self) -> CacheStats:
        """Zero the counters and return the pre-reset snapshot.

        The experiment sweep calls this after finishing each model so the
        reported hit-rates are per-model rather than cumulative across the
        whole run (cumulative counters made late models look better than
        they were, because earlier models' hits kept inflating the rate).
        Cached entries are not touched — use :meth:`invalidate` for that.
        """
        snapshot = self.snapshot()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        return snapshot


# --- shared-memory-backed store ----------------------------------------------

#: Process-wide counter making shared-segment names unique per store.
_SHM_STORE_SEQ = 0


class SharedMemoryActivationStore(ActivationCacheStore):
    """Activation store whose cached tensors live in named shared memory.

    Functionally identical to :class:`ActivationCacheStore` (same keys,
    same LRU, same counters — the parity suites cover both), but every
    admitted bundle's ``clean_image`` and stage tensors are copied into
    ``multiprocessing.shared_memory`` segments and served as read-only
    views.  The persistent worker runtime gives each long-lived worker one
    of these so that

    * bundle memory is visible to (and auditable by) the parent through
      the segment *name prefix* — a worker killed mid-job leaves segments
      the runtime reaps by prefix instead of leaking them, and
    * segments are retired with an explicit lifecycle: ``unlink`` happens
      immediately on eviction/invalidation (the name disappears), while
      the mapping is kept on a retired list until :meth:`release_retired`
      — a bundle fetched earlier in a job stays readable even if a later
      miss in the same job evicts it (the refcount is the job boundary).

    ``shutdown()`` drops every entry and closes every mapping; after it
    returns, no segment created by this store exists.
    """

    def __init__(self, max_entries: int = 4, segment_prefix: str | None = None) -> None:
        super().__init__(max_entries=max_entries)
        global _SHM_STORE_SEQ
        if segment_prefix is None:
            segment_prefix = f"rpa{os.getpid()}x{_SHM_STORE_SEQ}"
            _SHM_STORE_SEQ += 1
        self.segment_prefix = segment_prefix
        self._segment_seq = 0
        self._segments: dict[tuple[int, bytes], list] = {}
        self._retired: list = []
        self.segments_created = 0

    # -- segment bookkeeping ------------------------------------------------
    @property
    def active_segments(self) -> int:
        """Live (linked) segments: cached entries only, not retired maps."""
        return sum(len(segments) for segments in self._segments.values())

    def _share_array(self, array: np.ndarray):
        """Copy one array into a fresh segment; returns (segment, view)."""
        from multiprocessing import shared_memory

        array = np.ascontiguousarray(array)
        name = f"{self.segment_prefix}n{self._segment_seq}"
        self._segment_seq += 1
        segment = shared_memory.SharedMemory(
            create=True, name=name, size=max(1, array.nbytes)
        )
        self.segments_created += 1
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        # Cached bundles are read-only by the PR 2 contract (delta paths
        # .copy() before splicing); enforce it so a violation fails loudly
        # instead of corrupting every later job that hits this entry.
        view.flags.writeable = False
        return segment, view

    def _admit(self, activations: CleanActivations) -> CleanActivations:
        segments: list = []
        clean_segment, clean_view = self._share_array(activations.clean_image)
        segments.append(clean_segment)
        tensors: dict[str, np.ndarray] = {}
        for name, tensor in activations.tensors.items():
            segment, view = self._share_array(tensor)
            segments.append(segment)
            tensors[name] = view
        shared = CleanActivations(
            clean_image=clean_view,
            prediction=activations.prediction,
            tensors=tensors,
        )
        self._pending_segments = segments
        return shared

    def _drop(self, key: tuple[int, bytes]) -> None:
        super()._drop(key)
        for segment in self._segments.pop(key, ()):  # unlink now, close later
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
            self._retired.append(segment)

    def get(self, detector, image):
        activations = super().get(detector, image)
        pending = getattr(self, "_pending_segments", None)
        if pending is not None:
            # _admit ran for this miss: bind the segments to the entry the
            # base class just inserted (it is the MRU key by construction).
            self._pending_segments = None
            if self._entries:
                newest = next(reversed(self._entries))
                self._segments[newest] = pending
            else:  # pragma: no cover - cap >= 1 keeps the new entry cached
                self._retire_now(pending)
        return activations

    def _retire_now(self, segments) -> None:
        for segment in segments:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
            self._retired.append(segment)

    def release_retired(self) -> int:
        """Close retired (already unlinked) mappings; returns the count.

        The persistent worker calls this at each job boundary — no view of
        a retired bundle can be live once the job that fetched it returned.
        """
        released = len(self._retired)
        for segment in self._retired:
            try:
                segment.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        self._retired.clear()
        return released

    def shutdown(self) -> None:
        """Drop every entry and close every mapping (idempotent).

        After this returns no segment created by the store is linked or
        mapped; the parent's leak audit must find nothing under
        ``segment_prefix``.
        """
        self.invalidate()
        self.release_retired()
