"""Clean-scene activation cache for incremental (dirty-region) inference.

The butterfly-effect attack evaluates thousands of perturbation masks
against the *same* clean scene.  Each simulated detector can precompute the
clean scene's intermediate activations once (see
``Detector.clean_activations``) and then answer a perturbed image by
recomputing only the mask's dirty region.  This module provides the shared
cache machinery:

* :class:`CleanActivations` — the per-``(detector, image)`` bundle of
  cached tensors plus the decoded clean prediction;
* :class:`ActivationCacheStore` — a small content-keyed LRU store with a
  size cap, hit/miss/eviction/invalidation counters and explicit
  invalidation, used by the experiment runner to manage per-scene cache
  lifecycle across a models × images sweep;
* :class:`SharedMemoryActivationStore` — the same store with every cached
  tensor placed in a ``multiprocessing.shared_memory`` segment.  The
  persistent worker runtime (:mod:`repro.experiments.persistent`) gives
  each long-lived worker one, so bundle memory lives in named segments the
  parent can audit and reap; segments are refcount-retired on
  eviction/invalidation and explicitly unlinked on shutdown.
* :class:`CacheStats` — an immutable counter snapshot that supports
  differences (per-job/per-model deltas) and merging (summing per-worker
  counters into sweep-level totals across a process pool, where every
  worker owns a private store).
* :class:`DeltaActivationStore` — a second-order cache hanging off each
  clean bundle: it memoizes the *spliced* activation grids of already
  evaluated masks, keyed by the mask's provenance fingerprint, so an NSGA
  offspring can re-splice only the window where it differs from an
  evaluated ancestor instead of its whole dirty region (cross-generation
  delta reuse).  Its lifecycle is tied to the parent bundle: dropping the
  bundle (eviction, invalidation, shutdown) drops the delta entries with
  it and folds their counters into the parent store's totals.

Entries are keyed by the *content digest* of the image (plus the detector
instance), so presenting a new scene can never hit a stale entry — a fresh
image always misses and rebuilds.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.detection.prediction import Prediction
from repro.nn.incremental import (
    BBox,
    EMPTY_BBOX,
    bbox_intersection,
    bbox_is_empty,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.detectors.base import Detector


def image_digest(image: np.ndarray) -> bytes:
    """Stable content key of an image: dtype, shape and raw bytes."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(image.dtype).encode())
    digest.update(str(image.shape).encode())
    digest.update(np.ascontiguousarray(image).tobytes())
    return digest.digest()


@dataclass(frozen=True)
class CacheStats:
    """Immutable hit/miss/eviction/invalidation counters of a store.

    Snapshots subtract (``after - before`` gives the delta attributable to
    one attack job) and add (merging per-worker or per-model deltas into
    sweep totals), so the experiment engine can report per-model hit rates
    even when jobs fan out over a process pool of private stores.

    ``evictions`` counts cap-driven LRU drops only; ``invalidations``
    counts entries dropped by explicit :meth:`ActivationCacheStore.invalidate`
    calls (per-model lifecycle, shutdown).  Keeping the two separate lets
    persisted provenance distinguish cache pressure from lifecycle churn.

    ``delta_hits``/``delta_misses``/``delta_bytes`` count the second-order
    :class:`DeltaActivationStore` traffic (ancestor-grid lookups by the
    cross-generation reuse path and cumulative bytes of spliced grids
    admitted); they stay zero for stores without delta reuse, and
    :meth:`as_dict` omits them in that case so pre-existing persisted
    reports keep their exact shape.

    ``frame_hits``/``frame_misses`` count the temporal traffic of the
    streaming-sequence workload (:class:`SequenceActivationCache`): a frame
    whose clean bundle was derived incrementally from the previous frame's
    cached bundle is a frame hit, a dense rebuild is a frame miss.  Like
    the delta counters they stay zero for still-image runs and are omitted
    from :meth:`as_dict` in that case.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    delta_hits: int = 0
    delta_misses: int = 0
    delta_bytes: int = 0
    frame_hits: int = 0
    frame_misses: int = 0

    @property
    def requests(self) -> int:
        """Total lookups observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        return self.hits / self.requests if self.requests else 0.0

    @property
    def delta_requests(self) -> int:
        """Total delta-store lookups observed (delta hits + misses)."""
        return self.delta_hits + self.delta_misses

    @property
    def delta_hit_rate(self) -> float:
        """Fraction of delta lookups answered from stored grids."""
        return self.delta_hits / self.delta_requests if self.delta_requests else 0.0

    @property
    def frame_requests(self) -> int:
        """Total sequence-frame derivations observed (frame hits + misses)."""
        return self.frame_hits + self.frame_misses

    @property
    def frame_hit_rate(self) -> float:
        """Fraction of frames derived incrementally from the previous frame."""
        return self.frame_hits / self.frame_requests if self.frame_requests else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            invalidations=self.invalidations + other.invalidations,
            delta_hits=self.delta_hits + other.delta_hits,
            delta_misses=self.delta_misses + other.delta_misses,
            delta_bytes=self.delta_bytes + other.delta_bytes,
            frame_hits=self.frame_hits + other.frame_hits,
            frame_misses=self.frame_misses + other.frame_misses,
        )

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
            invalidations=self.invalidations - other.invalidations,
            delta_hits=self.delta_hits - other.delta_hits,
            delta_misses=self.delta_misses - other.delta_misses,
            delta_bytes=self.delta_bytes - other.delta_bytes,
            frame_hits=self.frame_hits - other.frame_hits,
            frame_misses=self.frame_misses - other.frame_misses,
        )

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly counters plus the derived hit rate.

        Delta-store counters appear only when there was delta traffic, so
        reports from runs without delta reuse keep the pre-existing shape.
        """
        counters = {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }
        if self.delta_hits or self.delta_misses or self.delta_bytes:
            counters["delta_hits"] = self.delta_hits
            counters["delta_misses"] = self.delta_misses
            counters["delta_bytes"] = self.delta_bytes
            counters["delta_hit_rate"] = self.delta_hit_rate
        if self.frame_hits or self.frame_misses:
            counters["frame_hits"] = self.frame_hits
            counters["frame_misses"] = self.frame_misses
            counters["frame_hit_rate"] = self.frame_hit_rate
        return counters

    @staticmethod
    def merge(parts: "list[CacheStats] | tuple[CacheStats, ...]") -> "CacheStats":
        """Sum a collection of snapshots (empty collection → zero stats)."""
        total = CacheStats()
        for part in parts:
            total = total + part
        return total


@dataclass
class CleanActivations:
    """Cached clean-scene activations of one ``(detector, image)`` pair.

    Attributes
    ----------
    clean_image:
        The canonical clean image ``clip(image + 0, 0, 255)`` — exactly the
        pixel values a zero mask would produce, so splicing against it is
        bit-identical to the full forward pass on the perturbed image.
    prediction:
        The decoded prediction on ``clean_image``; returned directly when a
        mask's dirty region is empty (nothing to recompute).
    tensors:
        Architecture-specific cached stages, e.g. the raw feature grid and
        the smoothed feature grid for the single-stage detector or the raw
        patch tokens for the transformer.
    delta:
        Optional second-order store of spliced activation grids for masks
        already evaluated against this bundle (cross-generation reuse).
        Attached by the owning :class:`ActivationCacheStore` when delta
        reuse is configured, or lazily by an evaluator; dropped with the
        bundle.
    fidelity_state:
        Lazily built, architecture-private derived state for approximate
        evaluation fidelities (e.g. the transformer's clean attention
        tensors per activation dtype).  Purely a recompute cache of the
        clean scene — safe to drop or rebuild at any time; a bundle
        re-wrapped for shared memory simply starts empty per worker.
    """

    clean_image: np.ndarray
    prediction: Prediction
    tensors: dict[str, np.ndarray] = field(default_factory=dict)
    delta: "DeltaActivationStore | None" = None
    fidelity_state: dict = field(default_factory=dict)


#: Default LRU cap of a per-bundle delta store — a couple of generations of
#: the paper's 101-individual population.
DEFAULT_DELTA_STORE_ENTRIES = 256


@dataclass
class DeltaActivations:
    """Spliced activation grids of one evaluated mask against one bundle.

    Attributes
    ----------
    mask_window:
        The mask values cropped to ``pixel_bbox`` (everything outside the
        crop is zero by construction) — enough to compute the *exact*
        relative dirty region of a descendant without holding a full-frame
        copy per entry.
    pixel_bbox:
        The exact nonzero bounding box of the full mask.
    prediction:
        The decoded prediction of ``clip(image + mask)``; returned directly
        when a descendant turns out to be bit-identical to this mask.
    tensors:
        The architecture's *pre-finalisation* spliced grids (the same stage
        names as the parent bundle's tensors), bit-identical to what a
        clean-bundle splice of the full dirty region produces — so a
        descendant can splice only its relative window into them.
    """

    mask_window: np.ndarray
    pixel_bbox: BBox
    prediction: Prediction
    tensors: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Array payload of the entry (mask crop plus spliced grids)."""
        return self.mask_window.nbytes + sum(
            tensor.nbytes for tensor in self.tensors.values()
        )

    def diff_bbox(self, mask: np.ndarray, within: BBox | None) -> BBox:
        """Exact bbox of the pixels where ``mask`` differs from this entry.

        ``within`` must contain every differing pixel (callers intersect
        the lineage diff bound with the union of both supports); ``None``
        scans the whole frame.  The stored crop is compared against the
        matching window of ``mask``, with zeros outside ``pixel_bbox``.
        """
        if within is None:
            within = (0, mask.shape[0], 0, mask.shape[1])
        if bbox_is_empty(within):
            return EMPTY_BBOX
        r0, r1, c0, c1 = within
        window = mask[r0:r1, c0:c1]
        ancestor = np.zeros_like(window)
        overlap = bbox_intersection(within, self.pixel_bbox)
        if overlap is not None and not bbox_is_empty(overlap):
            o_r0, o_r1, o_c0, o_c1 = overlap
            p_r0, _, p_c0, _ = self.pixel_bbox
            ancestor[o_r0 - r0 : o_r1 - r0, o_c0 - c0 : o_c1 - c0] = (
                self.mask_window[
                    o_r0 - p_r0 : o_r1 - p_r0, o_c0 - p_c0 : o_c1 - p_c0
                ]
            )
        differ = window != ancestor
        if differ.ndim == 3:
            differ = differ.any(axis=2)
        rows = np.flatnonzero(differ.any(axis=1))
        if rows.size == 0:
            return EMPTY_BBOX
        cols = np.flatnonzero(differ.any(axis=0))
        return (
            r0 + int(rows[0]),
            r0 + int(rows[-1]) + 1,
            c0 + int(cols[0]),
            c0 + int(cols[-1]) + 1,
        )


class DeltaActivationStore:
    """Per-bundle LRU of spliced activation grids keyed by mask provenance.

    The NSGA loop stamps every evaluated individual with a content
    fingerprint; offspring carry their parent's fingerprint.  When the
    evaluator meets an offspring whose ancestor's grids are stored here it
    re-splices only the *relative* dirty window (where the two masks
    differ) instead of the offspring's whole dirty region — a second-order
    incremental path that is bit-identical to the clean-bundle splice.

    The store lives on one :class:`CleanActivations` bundle and dies with
    it: the owning :class:`ActivationCacheStore` folds its counters into
    the parent totals and calls :meth:`clear` whenever the bundle is
    evicted, invalidated or shut down, so a delta entry can never outlive
    (or leak across) the clean grids it was spliced from.
    """

    def __init__(self, max_entries: int = DEFAULT_DELTA_STORE_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = int(max_entries)
        self._entries: dict[bytes, DeltaActivations] = {}
        self.hits = 0
        self.misses = 0
        self.bytes_admitted = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: bytes | None) -> DeltaActivations | None:
        """The stored entry for a fingerprint (``None`` misses trivially)."""
        if fingerprint is None:
            return None
        entry = self._entries.get(fingerprint)
        if entry is not None:
            self.hits += 1
            # Move to the MRU end so the cap evicts stale lineages first.
            self._entries[fingerprint] = self._entries.pop(fingerprint)
            return entry
        self.misses += 1
        return None

    def put(self, fingerprint: bytes | None, entry: DeltaActivations) -> None:
        """Admit one evaluated mask's spliced grids under its fingerprint.

        Unkeyed masks (no provenance) are not stored; re-putting a known
        fingerprint only refreshes its LRU position — the content is
        identical by construction (the fingerprint is a content digest).
        """
        if fingerprint is None:
            return
        if fingerprint in self._entries:
            self._entries[fingerprint] = self._entries.pop(fingerprint)
            return
        entry = self._admit(entry)
        while len(self._entries) >= self.max_entries:
            self._evict(next(iter(self._entries)))
        self._entries[fingerprint] = entry
        self.bytes_admitted += entry.nbytes
        self._bind(fingerprint)

    # -- subclass hooks -----------------------------------------------------
    def _admit(self, entry: DeltaActivations) -> DeltaActivations:
        """Hook: transform a fresh entry before caching it."""
        return entry

    def _evict(self, fingerprint: bytes) -> None:
        """Hook: remove one entry (cap-driven)."""
        del self._entries[fingerprint]

    def _bind(self, fingerprint: bytes) -> None:
        """Hook: associate out-of-band resources with the admitted key."""

    def release_evicted(self) -> int:
        """Hook: free resources of evicted entries (population boundary)."""
        return 0

    def clear(self) -> int:
        """Drop every entry (parent bundle dropped); returns the count."""
        count = len(self._entries)
        self._entries.clear()
        return count

    # -- counters -----------------------------------------------------------
    def counters(self) -> CacheStats:
        """The store's traffic as delta-counter-only :class:`CacheStats`."""
        return CacheStats(
            delta_hits=self.hits,
            delta_misses=self.misses,
            delta_bytes=self.bytes_admitted,
        )

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.bytes_admitted = 0


@dataclass
class _StoreEntry:
    detector: "Detector"  # strong ref: keeps id(detector) stable while cached
    activations: CleanActivations


class ActivationCacheStore:
    """Content-keyed LRU store of :class:`CleanActivations`.

    Keys combine the detector identity with the image content digest, so a
    new scene (or a retrained detector instance) always misses — there are
    no stale hits by construction.  The ``max_entries`` cap bounds memory
    for long models × scenes sweeps; the least recently used entry is
    evicted first.
    """

    def __init__(self, max_entries: int = 4, delta_store_size: int = 0) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if delta_store_size < 0:
            raise ValueError("delta_store_size must be non-negative")
        self.max_entries = int(max_entries)
        self.delta_store_size = int(delta_store_size)
        self._entries: dict[tuple[int, bytes], _StoreEntry] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        # Delta traffic of bundles already dropped — folded in at _drop so
        # snapshots stay monotonic while bundles churn.
        self._delta_dropped = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, detector: "Detector", image: np.ndarray) -> CleanActivations | None:
        """The cached activations for ``(detector, image)``, built on miss.

        Returns ``None`` when the detector does not support incremental
        inference (its ``clean_activations`` returns ``None``); nothing is
        stored in that case.
        """
        key = (id(detector), image_digest(image))
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            # Move to the MRU end so the cap evicts the oldest scene first.
            self._entries[key] = self._entries.pop(key)
            return entry.activations
        self.misses += 1
        activations = detector.clean_activations(image)
        if activations is None:
            return None
        activations = self._admit(activations)
        if self.delta_store_size > 0 and activations.delta is None:
            activations.delta = self._make_delta_store()
        while len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.evictions += 1
        self._entries[key] = _StoreEntry(detector=detector, activations=activations)
        return activations

    def put(
        self,
        detector: "Detector",
        image: np.ndarray,
        activations: CleanActivations,
    ) -> CleanActivations:
        """Admit an externally built bundle under ``(detector, image)``.

        The streaming-sequence workload derives frame t's bundle from frame
        t−1's instead of calling ``detector.clean_activations`` — this entry
        point lets such bundles ride the store's machinery anyway (LRU cap,
        delta-store attachment, and — on the shared-memory subclass —
        segment placement and lifecycle broadcasts).  Returns the admitted
        bundle, which callers must use in place of the one they passed in:
        the shared-memory store re-wraps tensors as read-only segment
        views.  Re-admitting a cached key only refreshes its LRU position.
        Neither ``hits`` nor ``misses`` move — an admission is not a
        lookup; the temporal traffic is counted by the sequence cache's
        ``frame_hits``/``frame_misses``.
        """
        key = (id(detector), image_digest(image))
        entry = self._entries.get(key)
        if entry is not None:
            self._entries[key] = self._entries.pop(key)
            return entry.activations
        activations = self._admit(activations)
        if self.delta_store_size > 0 and activations.delta is None:
            activations.delta = self._make_delta_store()
        while len(self._entries) >= self.max_entries:
            self._drop(next(iter(self._entries)))
            self.evictions += 1
        self._entries[key] = _StoreEntry(detector=detector, activations=activations)
        return activations

    def _admit(self, activations: CleanActivations) -> CleanActivations:
        """Hook: transform a freshly built bundle before caching it."""
        return activations

    def _make_delta_store(self) -> DeltaActivationStore:
        """Hook: build the per-bundle delta store (shm stores share segments)."""
        return DeltaActivationStore(max_entries=self.delta_store_size)

    def _drop(self, key: tuple[int, bytes]) -> None:
        """Hook: remove one entry (eviction or invalidation).

        A bundle's delta store dies with the bundle: its counters fold into
        the parent totals (so per-job snapshot deltas stay monotonic) and
        its entries are cleared — a spliced grid never outlives the clean
        grids it derives from.
        """
        entry = self._entries.pop(key)
        delta = entry.activations.delta
        if delta is not None:
            self._delta_dropped = self._delta_dropped + delta.counters()
            delta.reset_counters()
            delta.clear()

    def resize(self, max_entries: int) -> int:
        """Change the entry cap in place; returns the cap actually applied.

        Growing never touches existing entries; shrinking evicts from the
        LRU end until the store fits (counted as evictions).  The
        persistent runtime broadcasts grow-only resizes when a plan brings
        more distinct models than the configured cap, so long-lived workers
        adopt the auto-sized cap without a restart.
        """
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = int(max_entries)
        while len(self._entries) > self.max_entries:
            self._drop(next(iter(self._entries)))
            self.evictions += 1
        return self.max_entries

    def invalidate(self, detector: "Detector | None" = None) -> int:
        """Drop entries (all of them, or one detector's); returns the count.

        Explicit drops are counted in ``invalidations`` (not ``evictions``,
        which stays cap-driven only) so persisted provenance reports entry
        turnover completely.
        """
        if detector is None:
            keys = list(self._entries)
        else:
            keys = [key for key in self._entries if key[0] == id(detector)]
        for key in keys:
            self._drop(key)
        self.invalidations += len(keys)
        return len(keys)

    def _delta_totals(self) -> CacheStats:
        """Delta traffic: dropped bundles' folded counters plus live stores."""
        totals = self._delta_dropped
        for entry in self._entries.values():
            delta = entry.activations.delta
            if delta is not None:
                totals = totals + delta.counters()
        return totals

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction/invalidation counters plus the entry count.

        Delta-store counters appear only on stores configured for (or
        carrying) delta reuse, keeping the pre-existing shape otherwise.
        """
        counters = {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": len(self._entries),
        }
        delta_totals = self._delta_totals()
        if self.delta_store_size > 0 or delta_totals != CacheStats():
            counters["delta_hits"] = delta_totals.delta_hits
            counters["delta_misses"] = delta_totals.delta_misses
            counters["delta_bytes"] = delta_totals.delta_bytes
        return counters

    def snapshot(self) -> CacheStats:
        """The current counters as an immutable :class:`CacheStats`."""
        return (
            CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                invalidations=self.invalidations,
            )
            + self._delta_totals()
        )

    def reset_stats(self) -> CacheStats:
        """Zero the counters and return the pre-reset snapshot.

        The experiment sweep calls this after finishing each model so the
        reported hit-rates are per-model rather than cumulative across the
        whole run (cumulative counters made late models look better than
        they were, because earlier models' hits kept inflating the rate).
        Cached entries are not touched — use :meth:`invalidate` for that.
        """
        snapshot = self.snapshot()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._delta_dropped = CacheStats()
        for entry in self._entries.values():
            delta = entry.activations.delta
            if delta is not None:
                delta.reset_counters()
        return snapshot


# --- shared-memory-backed store ----------------------------------------------

#: Process-wide counter making shared-segment names unique per store.
_SHM_STORE_SEQ = 0


class SharedMemoryActivationStore(ActivationCacheStore):
    """Activation store whose cached tensors live in named shared memory.

    Functionally identical to :class:`ActivationCacheStore` (same keys,
    same LRU, same counters — the parity suites cover both), but every
    admitted bundle's ``clean_image`` and stage tensors are copied into
    ``multiprocessing.shared_memory`` segments and served as read-only
    views.  The persistent worker runtime gives each long-lived worker one
    of these so that

    * bundle memory is visible to (and auditable by) the parent through
      the segment *name prefix* — a worker killed mid-job leaves segments
      the runtime reaps by prefix instead of leaking them, and
    * segments are retired with an explicit lifecycle: ``unlink`` happens
      immediately on eviction/invalidation (the name disappears), while
      the mapping is kept on a retired list until :meth:`release_retired`
      — a bundle fetched earlier in a job stays readable even if a later
      miss in the same job evicts it (the refcount is the job boundary).

    ``shutdown()`` drops every entry and closes every mapping; after it
    returns, no segment created by this store exists.
    """

    def __init__(
        self,
        max_entries: int = 4,
        segment_prefix: str | None = None,
        delta_store_size: int = 0,
    ) -> None:
        super().__init__(max_entries=max_entries, delta_store_size=delta_store_size)
        global _SHM_STORE_SEQ
        if segment_prefix is None:
            segment_prefix = f"rpa{os.getpid()}x{_SHM_STORE_SEQ}"
            _SHM_STORE_SEQ += 1
        self.segment_prefix = segment_prefix
        self._segment_seq = 0
        self._segments: dict[tuple[int, bytes], list] = {}
        self._retired: list = []
        self.segments_created = 0

    # -- segment bookkeeping ------------------------------------------------
    @property
    def active_segments(self) -> int:
        """Live (linked) segments: cached entries only, not retired maps."""
        return sum(len(segments) for segments in self._segments.values())

    def _share_array(self, array: np.ndarray):
        """Copy one array into a fresh segment; returns (segment, view)."""
        from multiprocessing import shared_memory

        array = np.ascontiguousarray(array)
        name = f"{self.segment_prefix}n{self._segment_seq}"
        self._segment_seq += 1
        segment = shared_memory.SharedMemory(
            create=True, name=name, size=max(1, array.nbytes)
        )
        self.segments_created += 1
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        # Cached bundles are read-only by the PR 2 contract (delta paths
        # .copy() before splicing); enforce it so a violation fails loudly
        # instead of corrupting every later job that hits this entry.
        view.flags.writeable = False
        return segment, view

    def _admit(self, activations: CleanActivations) -> CleanActivations:
        segments: list = []
        clean_segment, clean_view = self._share_array(activations.clean_image)
        segments.append(clean_segment)
        tensors: dict[str, np.ndarray] = {}
        for name, tensor in activations.tensors.items():
            segment, view = self._share_array(tensor)
            segments.append(segment)
            tensors[name] = view
        shared = CleanActivations(
            clean_image=clean_view,
            prediction=activations.prediction,
            tensors=tensors,
        )
        self._pending_segments = segments
        return shared

    def _make_delta_store(self) -> DeltaActivationStore:
        """Delta entries share the owner's segment namespace, so the
        parent's reap-by-prefix and leak audits cover them for free."""
        return _SharedMemoryDeltaStore(
            max_entries=self.delta_store_size, owner=self
        )

    def _drop(self, key: tuple[int, bytes]) -> None:
        super()._drop(key)
        for segment in self._segments.pop(key, ()):  # unlink now, close later
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
            self._retired.append(segment)

    def get(self, detector, image):
        activations = super().get(detector, image)
        pending = getattr(self, "_pending_segments", None)
        if pending is not None:
            # _admit ran for this miss: bind the segments to the entry the
            # base class just inserted (it is the MRU key by construction).
            self._pending_segments = None
            if self._entries:
                newest = next(reversed(self._entries))
                self._segments[newest] = pending
            else:  # pragma: no cover - cap >= 1 keeps the new entry cached
                self._retire_now(pending)
        return activations

    def put(self, detector, image, activations):
        shared = super().put(detector, image, activations)
        pending = getattr(self, "_pending_segments", None)
        if pending is not None:
            # _admit ran for this admission: bind the segments to the entry
            # the base class just inserted (the MRU key by construction).
            self._pending_segments = None
            if self._entries:
                newest = next(reversed(self._entries))
                self._segments[newest] = pending
            else:  # pragma: no cover - cap >= 1 keeps the new entry cached
                self._retire_now(pending)
        return shared

    def _retire_now(self, segments) -> None:
        for segment in segments:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
            self._retired.append(segment)

    def release_retired(self) -> int:
        """Close retired (already unlinked) mappings; returns the count.

        The persistent worker calls this at each job boundary — no view of
        a retired bundle can be live once the job that fetched it returned.
        """
        released = len(self._retired)
        for segment in self._retired:
            try:
                segment.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        self._retired.clear()
        return released

    def shutdown(self) -> None:
        """Drop every entry and close every mapping (idempotent).

        After this returns no segment created by the store is linked or
        mapped; the parent's leak audit must find nothing under
        ``segment_prefix``.
        """
        self.invalidate()
        self.release_retired()


class _SharedMemoryDeltaStore(DeltaActivationStore):
    """Delta store whose entries live in the owning shm store's segments.

    Entries are copied into segments named under the owner's prefix (so the
    persistent runtime's reap-by-prefix and leak audits cover them), with
    the same unlink-now / close-later retirement discipline:

    * cap-driven evictions unlink immediately and keep the mapping on a
      local list until :meth:`release_evicted` — the evaluator calls that
      at each population boundary, the only point where no view of an
      evicted entry can still be live;
    * :meth:`clear` (the parent bundle was dropped) unlinks everything and
      hands the mappings to the *owner's* retired list, closed at the next
      job boundary alongside the bundle's own segments — a view fetched
      earlier in the job stays readable.
    """

    def __init__(self, max_entries: int, owner: SharedMemoryActivationStore) -> None:
        super().__init__(max_entries=max_entries)
        self._owner = owner
        self._segments: dict[bytes, list] = {}
        self._evicted: list = []
        self._pending_segments: list | None = None

    def _admit(self, entry: DeltaActivations) -> DeltaActivations:
        segments: list = []
        mask_segment, mask_view = self._owner._share_array(entry.mask_window)
        segments.append(mask_segment)
        tensors: dict[str, np.ndarray] = {}
        for name, tensor in entry.tensors.items():
            segment, view = self._owner._share_array(tensor)
            segments.append(segment)
            tensors[name] = view
        self._pending_segments = segments
        return DeltaActivations(
            mask_window=mask_view,
            pixel_bbox=entry.pixel_bbox,
            prediction=entry.prediction,
            tensors=tensors,
        )

    def _bind(self, fingerprint: bytes) -> None:
        if self._pending_segments is not None:
            self._segments[fingerprint] = self._pending_segments
            self._pending_segments = None

    def _evict(self, fingerprint: bytes) -> None:
        super()._evict(fingerprint)
        for segment in self._segments.pop(fingerprint, ()):
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
            self._evicted.append(segment)

    def release_evicted(self) -> int:
        """Close evicted (already unlinked) mappings; returns the count."""
        released = len(self._evicted)
        for segment in self._evicted:
            try:
                segment.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        self._evicted.clear()
        return released

    def clear(self) -> int:
        count = super().clear()
        for segments in self._segments.values():
            for segment in segments:
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
                self._owner._retired.append(segment)
        self._segments.clear()
        # Evicted mappings not yet released ride the same owner boundary.
        self._owner._retired.extend(self._evicted)
        self._evicted.clear()
        return count


# --- streaming-sequence frame cache -------------------------------------------


class SequenceActivationCache:
    """Rolling cache of clean-activation bundles along one video sequence.

    Frames of a driving sequence arrive in order and differ only where
    objects moved, so frame t's clean bundle is *derived* from frame t−1's
    through :meth:`Detector.clean_activations_delta` — the inter-frame diff
    is spliced like a sparse mask — instead of a full dense forward.  The
    cache keeps the last ``max_frames`` bundles (a mask evaluated against
    the sequence touches every live frame, so the window bounds memory, not
    reuse: derivation only ever needs the newest bundle), evicting oldest
    first and folding evicted bundles' delta counters into the snapshot.

    ``frame_hits`` counts frames whose bundle was derived incrementally
    (including identical frames answered by sharing the previous tensors);
    ``frame_misses`` counts dense rebuilds — the first frame of a sequence
    is always a miss.  Both fold into :class:`CacheStats` so sequence jobs
    report temporal reuse through the same per-job snapshot deltas as the
    still-image caches.

    An optional backing ``store`` (the worker's activation store) admits
    every derived bundle via :meth:`ActivationCacheStore.put`, so on the
    persistent runtime frame bundles live in shared-memory segments under
    the worker's prefix and die with the model's lifecycle broadcast; the
    cache then holds the store's re-wrapped (read-only) views.  Bundles
    admitted to a store leave delta-counter folding to the store — the
    snapshot only adds its own counters, so merging both never
    double-counts.
    """

    def __init__(
        self,
        detector: "Detector",
        max_frames: int = 2,
        store: ActivationCacheStore | None = None,
    ) -> None:
        if max_frames < 1:
            raise ValueError("max_frames must be at least 1")
        self.detector = detector
        self.max_frames = int(max_frames)
        self.store = store
        self._frames: dict[bytes, CleanActivations] = {}
        self.frame_hits = 0
        self.frame_misses = 0
        self.evictions = 0
        self._dropped = CacheStats()

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def latest(self) -> CleanActivations | None:
        """The most recently advanced frame's bundle (the splice source)."""
        if not self._frames:
            return None
        return self._frames[next(reversed(self._frames))]

    def advance(
        self, image: np.ndarray, dirty_bound: BBox | None = None
    ) -> CleanActivations | None:
        """The clean bundle of the sequence's next frame.

        Derived from the latest cached frame's bundle by splicing only the
        inter-frame dirty region (``dirty_bound`` optionally restricts the
        diff scan — e.g. to the moving-object union bound from consecutive
        scene specs; the exact diff is still computed, so a loose bound
        never changes the result) and bit-identical to
        ``detector.clean_activations(image)`` either way.  Returns ``None``
        for detectors without incremental support (nothing is cached).
        """
        key = image_digest(image)
        cached = self._frames.get(key)
        if cached is not None:
            self.frame_hits += 1
            self._frames[key] = self._frames.pop(key)
            return cached
        bundle, incremental = self.detector.clean_activations_delta(
            image, self.latest, dirty_bound
        )
        if bundle is None:
            self.frame_misses += 1
            return None
        if self.store is not None:
            bundle = self.store.put(self.detector, image, bundle)
        if incremental:
            self.frame_hits += 1
        else:
            self.frame_misses += 1
        while len(self._frames) >= self.max_frames:
            self._drop(next(iter(self._frames)))
            self.evictions += 1
        self._frames[key] = bundle
        return bundle

    def _drop(self, key: bytes) -> None:
        """Evict one frame bundle, folding its delta counters.

        Store-admitted bundles are owned by the backing store (which folds
        their delta counters on its own drop); only privately held bundles
        fold here, so merging this cache's snapshot with the store's never
        double-counts.
        """
        bundle = self._frames.pop(key)
        if self.store is None:
            delta = bundle.delta
            if delta is not None:
                self._dropped = self._dropped + delta.counters()
                delta.reset_counters()
                delta.clear()

    def clear(self) -> int:
        """Drop every cached frame (sequence finished); returns the count."""
        count = len(self._frames)
        for key in list(self._frames):
            self._drop(key)
        return count

    def snapshot(self) -> CacheStats:
        """The temporal counters (plus privately owned delta traffic)."""
        totals = (
            CacheStats(
                evictions=self.evictions,
                frame_hits=self.frame_hits,
                frame_misses=self.frame_misses,
            )
            + self._dropped
        )
        if self.store is None:
            for bundle in self._frames.values():
                if bundle.delta is not None:
                    totals = totals + bundle.delta.counters()
        return totals

    @property
    def stats(self) -> dict[str, float]:
        """JSON-friendly counters (the snapshot's conditional dict form)."""
        counters = self.snapshot().as_dict()
        counters["frames_cached"] = len(self._frames)
        return counters
