"""Clean-scene activation cache for incremental (dirty-region) inference.

The butterfly-effect attack evaluates thousands of perturbation masks
against the *same* clean scene.  Each simulated detector can precompute the
clean scene's intermediate activations once (see
``Detector.clean_activations``) and then answer a perturbed image by
recomputing only the mask's dirty region.  This module provides the shared
cache machinery:

* :class:`CleanActivations` — the per-``(detector, image)`` bundle of
  cached tensors plus the decoded clean prediction;
* :class:`ActivationCacheStore` — a small content-keyed LRU store with a
  size cap, hit/miss/eviction counters and explicit invalidation, used by
  the experiment runner to manage per-scene cache lifecycle across a
  models × images sweep;
* :class:`CacheStats` — an immutable counter snapshot that supports
  differences (per-job/per-model deltas) and merging (summing per-worker
  counters into sweep-level totals across a process pool, where every
  worker owns a private store).

Entries are keyed by the *content digest* of the image (plus the detector
instance), so presenting a new scene can never hit a stale entry — a fresh
image always misses and rebuilds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.detection.prediction import Prediction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.detectors.base import Detector


def image_digest(image: np.ndarray) -> bytes:
    """Stable content key of an image: dtype, shape and raw bytes."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(image.dtype).encode())
    digest.update(str(image.shape).encode())
    digest.update(np.ascontiguousarray(image).tobytes())
    return digest.digest()


@dataclass(frozen=True)
class CacheStats:
    """Immutable hit/miss/eviction counters of an activation store.

    Snapshots subtract (``after - before`` gives the delta attributable to
    one attack job) and add (merging per-worker or per-model deltas into
    sweep totals), so the experiment engine can report per-model hit rates
    even when jobs fan out over a process pool of private stores.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups observed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        return self.hits / self.requests if self.requests else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            evictions=self.evictions - other.evictions,
        )

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly counters plus the derived hit rate."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    @staticmethod
    def merge(parts: "list[CacheStats] | tuple[CacheStats, ...]") -> "CacheStats":
        """Sum a collection of snapshots (empty collection → zero stats)."""
        total = CacheStats()
        for part in parts:
            total = total + part
        return total


@dataclass
class CleanActivations:
    """Cached clean-scene activations of one ``(detector, image)`` pair.

    Attributes
    ----------
    clean_image:
        The canonical clean image ``clip(image + 0, 0, 255)`` — exactly the
        pixel values a zero mask would produce, so splicing against it is
        bit-identical to the full forward pass on the perturbed image.
    prediction:
        The decoded prediction on ``clean_image``; returned directly when a
        mask's dirty region is empty (nothing to recompute).
    tensors:
        Architecture-specific cached stages, e.g. the raw feature grid and
        the smoothed feature grid for the single-stage detector or the raw
        patch tokens for the transformer.
    """

    clean_image: np.ndarray
    prediction: Prediction
    tensors: dict[str, np.ndarray] = field(default_factory=dict)


@dataclass
class _StoreEntry:
    detector: "Detector"  # strong ref: keeps id(detector) stable while cached
    activations: CleanActivations


class ActivationCacheStore:
    """Content-keyed LRU store of :class:`CleanActivations`.

    Keys combine the detector identity with the image content digest, so a
    new scene (or a retrained detector instance) always misses — there are
    no stale hits by construction.  The ``max_entries`` cap bounds memory
    for long models × scenes sweeps; the least recently used entry is
    evicted first.
    """

    def __init__(self, max_entries: int = 4) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = int(max_entries)
        self._entries: dict[tuple[int, bytes], _StoreEntry] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, detector: "Detector", image: np.ndarray) -> CleanActivations | None:
        """The cached activations for ``(detector, image)``, built on miss.

        Returns ``None`` when the detector does not support incremental
        inference (its ``clean_activations`` returns ``None``); nothing is
        stored in that case.
        """
        key = (id(detector), image_digest(image))
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            # Move to the MRU end so the cap evicts the oldest scene first.
            self._entries[key] = self._entries.pop(key)
            return entry.activations
        self.misses += 1
        activations = detector.clean_activations(image)
        if activations is None:
            return None
        while len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
        self._entries[key] = _StoreEntry(detector=detector, activations=activations)
        return activations

    def invalidate(self, detector: "Detector | None" = None) -> int:
        """Drop entries (all of them, or one detector's); returns the count."""
        if detector is None:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped
        keys = [key for key in self._entries if key[0] == id(detector)]
        for key in keys:
            del self._entries[key]
        return len(keys)

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus the current entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }

    def snapshot(self) -> CacheStats:
        """The current counters as an immutable :class:`CacheStats`."""
        return CacheStats(hits=self.hits, misses=self.misses, evictions=self.evictions)

    def reset_stats(self) -> CacheStats:
        """Zero the counters and return the pre-reset snapshot.

        The experiment sweep calls this after finishing each model so the
        reported hit-rates are per-model rather than cumulative across the
        whole run (cumulative counters made late models look better than
        they were, because earlier models' hits kept inflating the rate).
        Cached entries are not touched — use :meth:`invalidate` for that.
        """
        snapshot = self.snapshot()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        return snapshot
