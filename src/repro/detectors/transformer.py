"""Transformer (DETR-like) simulated detector.

The defining architectural property reproduced here is *global attention*:
before classification, every cell's features are mixed with the features of
every other cell through a content-dependent softmax attention matrix.  Any
pixel in the image can therefore influence any prediction — the mechanism
the paper conjectures makes transformer detectors more susceptible to
butterfly-effect attacks ("the attention mechanisms connecting two arbitrary
regions in an image").
"""

from __future__ import annotations

import numpy as np

from repro.detection.prediction import Prediction
from repro.detectors.activation_cache import CleanActivations
from repro.detectors.base import (
    Detector,
    DetectorConfig,
    validate_image,
    validate_image_batch,
)
from repro.detectors.prototypes import PrototypeBank
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.features import CELL_FEATURE_DIM, GridFeatureExtractor
from repro.nn.incremental import (
    BBox,
    bbox_is_empty,
    dilate_bbox,
    pixel_bbox_to_cell_bbox,
)
from repro.nn.linear import Linear
from repro.nn.ops import grid_positional_encoding, layer_norm, softmax


class TransformerDetector(Detector):
    """Grid-token detector with global self-attention feature mixing.

    The forward pass is:

    1. extract raw per-cell features (the "patch embedding" input),
    2. embed them (seeded linear projection + 2-D positional encoding),
    3. run ``num_layers`` of multi-head self-attention to obtain contextual
       token embeddings,
    4. compute a content-dependent attention matrix from the contextual
       embeddings and use it to mix the *raw* cell features globally,
    5. classify the mixed features against the trained prototype bank and
       decode boxes exactly like the single-stage detector.

    Because step 4 mixes features across the whole image with softmax
    weights, a strong perturbation anywhere can capture attention mass from
    an object's cells and drag their mixed features away from the class
    prototype — changing class scores, box moments or both.

    Parameters
    ----------
    attention_mix:
        Weight ``α`` of the attention-mixed features; ``(1 - α)`` stays on
        the cell's own features.
    embed_dim:
        Dimension of the token embeddings used to compute attention.
    num_layers:
        Number of self-attention refinement layers.
    attention_sharpness:
        Multiplier on the attention logits; larger values concentrate
        attention on fewer cells.
    """

    architecture = "transformer"
    supports_incremental = True
    supports_delta_reuse = True

    def __init__(
        self,
        prototypes: PrototypeBank,
        config: DetectorConfig | None = None,
        seed: int = 0,
        attention_mix: float = 0.45,
        embed_dim: int = 16,
        num_heads: int = 2,
        num_layers: int = 2,
        attention_sharpness: float = 2.0,
    ) -> None:
        super().__init__(config, seed)
        if not 0.0 <= attention_mix <= 1.0:
            raise ValueError("attention_mix must be in [0, 1]")
        if attention_sharpness <= 0:
            raise ValueError("attention_sharpness must be positive")
        self.prototypes = prototypes
        self.attention_mix = attention_mix
        self.embed_dim = embed_dim
        self.attention_sharpness = attention_sharpness
        self.extractor = GridFeatureExtractor(cell=self.config.cell)

        rng = np.random.default_rng(seed)
        self.embedding = Linear(CELL_FEATURE_DIM, embed_dim, rng)
        self.layers = [
            MultiHeadSelfAttention(embed_dim, num_heads=num_heads, rng=rng)
            for _ in range(num_layers)
        ]
        self.query_proj = Linear(embed_dim, embed_dim, rng)
        self.key_proj = Linear(embed_dim, embed_dim, rng)
        self._last_mixing_attention: np.ndarray | None = None
        self._positional_cache: dict[tuple[int, int], np.ndarray] = {}

    @property
    def last_mixing_attention(self) -> np.ndarray | None:
        """The (tokens, tokens) attention matrix of the last forward pass."""
        return self._last_mixing_attention

    def _positional(self, rows: int, cols: int) -> np.ndarray:
        key = (rows, cols)
        if key not in self._positional_cache:
            self._positional_cache[key] = grid_positional_encoding(
                rows, cols, self.embed_dim
            )
        return self._positional_cache[key]

    def _attention_from_raw(self, raw: np.ndarray) -> np.ndarray:
        """Attention matrix from raw cell features ``(..., rows, cols, dim)``.

        Works on single images and batches alike; leading axes are carried
        through all token operations unchanged, so batched results are
        bit-identical to the per-image computation.
        """
        rows, cols = raw.shape[-3], raw.shape[-2]
        flat = raw.reshape(raw.shape[:-3] + (rows * cols, raw.shape[-1]))
        tokens = self.embedding(flat)
        tokens = layer_norm(tokens + self._positional(rows, cols), axis=-1)
        for layer in self.layers:
            tokens = layer(tokens)
        query = self.query_proj(tokens)
        key = self.key_proj(tokens)
        # Same scores/softmax as scaled_dot_product_attention, minus the
        # ``weights @ value`` product that function would also compute —
        # the mixing stage applies the weights to the *raw* features
        # itself, so the attended embeddings would be thrown away.
        temperature = np.sqrt(self.embed_dim) / self.attention_sharpness
        scores = query @ np.swapaxes(key, -1, -2) / temperature
        return softmax(scores, axis=-1)

    def attention_matrix(self, image: np.ndarray) -> np.ndarray:
        """Content-dependent (tokens, tokens) attention matrix for an image."""
        image = validate_image(image)
        return self._attention_from_raw(self.extractor(image))

    def _mix_features(self, raw: np.ndarray) -> np.ndarray:
        """Blend raw cell features with their attention-mixed counterpart."""
        rows, cols = raw.shape[-3], raw.shape[-2]
        flat_raw = raw.reshape(raw.shape[:-3] + (rows * cols, raw.shape[-1]))
        weights = self._attention_from_raw(raw)
        self._last_mixing_attention = weights
        mixed = weights @ flat_raw
        blended = (1.0 - self.attention_mix) * flat_raw + self.attention_mix * mixed
        return blended.reshape(raw.shape)

    def backbone_features(self, image: np.ndarray) -> np.ndarray:
        """Attention-mixed cell features (rows, cols, feature_dim)."""
        image = validate_image(image)
        return self._mix_features(self.extractor(image))

    def backbone_features_batch(self, images: np.ndarray) -> np.ndarray:
        """Batched :meth:`backbone_features`; returns (B, rows, cols, dim).

        One embedding/attention pass serves the whole stack; per-image
        results are bit-identical to the single-image path.  The
        :attr:`last_mixing_attention` buffer holds the (B, tokens, tokens)
        stack of the most recent forward pass (the last internal chunk when
        called through :meth:`predict_batch`).
        """
        images = validate_image_batch(images)
        return self._mix_features(self.extractor.batch(images))

    def cell_probabilities(self, image: np.ndarray) -> np.ndarray:
        """Per-cell class probabilities (rows, cols, num_classes + 1)."""
        return self.prototypes.probabilities(self.backbone_features(image))

    def cell_probabilities_batch(self, images: np.ndarray) -> np.ndarray:
        """Batched per-cell class probabilities (B, rows, cols, classes + 1)."""
        return self.prototypes.probabilities(self.backbone_features_batch(images))

    def predict(self, image: np.ndarray) -> Prediction:
        image = validate_image(image)
        probabilities = self.cell_probabilities(image)
        return self._decode(probabilities, (image.shape[0], image.shape[1]))

    def predict_batch(self, images: np.ndarray) -> list[Prediction]:
        """Vectorised batch prediction, processed in cache-friendly chunks."""
        images = validate_image_batch(images)
        image_shape = (images.shape[1], images.shape[2])
        chunk = max(1, int(self.batch_chunk))
        predictions: list[Prediction] = []
        for start in range(0, images.shape[0], chunk):
            probabilities = self.cell_probabilities_batch(images[start : start + chunk])
            predictions.extend(self._decode_batch(probabilities, image_shape))
        return predictions

    # ------------------------------------------------------------------
    # Incremental (dirty-region) inference
    # ------------------------------------------------------------------

    def clean_activations(self, image: np.ndarray) -> CleanActivations:
        """Cache the clean scene's raw (pre-attention) patch tokens.

        Only the patch-embedding input — the raw per-cell feature grid — is
        cached: the attention stage mixes every token with every other one,
        so a perturbation anywhere invalidates the mixed features globally
        and attention must always be recomputed from the spliced grid.
        """
        image = validate_image(image)
        clean_image = np.clip(image + 0.0, 0.0, 255.0)
        raw = self.extractor(clean_image)
        probabilities = self.prototypes.probabilities(self._mix_features(raw))
        prediction = self._decode(probabilities, (image.shape[0], image.shape[1]))
        return CleanActivations(
            clean_image=clean_image, prediction=prediction, tensors={"raw": raw}
        )

    def _delta_raw_state(
        self,
        image: np.ndarray,
        mask: np.ndarray,
        pixel_bbox: BBox,
        source: dict[str, np.ndarray],
    ) -> np.ndarray | None:
        """Raw patch tokens after splicing the ``pixel_bbox`` window into a
        ``source`` raw grid (the clean bundle's, or an evaluated ancestor's
        stored tokens for cross-generation reuse); ``None`` when no cell is
        touched.  Tokens outside the window read identical input pixels, so
        the spliced grid is bit-identical to a full extraction; the global
        attention stage is always recomputed from it.
        """
        grid_shape = self.extractor.grid_shape(image)
        cell_bbox = pixel_bbox_to_cell_bbox(
            dilate_bbox(pixel_bbox, 1, (image.shape[0], image.shape[1])),
            self.config.cell,
            grid_shape,
        )
        if bbox_is_empty(cell_bbox):
            return None
        raw = source["raw"].copy()
        cr0, cr1, cc0, cc1 = cell_bbox
        raw[cr0:cr1, cc0:cc1] = self.extractor.window_features(image, mask, cell_bbox)
        return raw

    def _delta_raw_grid(
        self,
        image: np.ndarray,
        mask: np.ndarray,
        pixel_bbox: BBox,
        clean: CleanActivations,
    ) -> np.ndarray | None:
        """Raw patch tokens of the perturbed image, spliced into the cached
        clean grid; ``None`` when no cell is touched (clean prediction
        stands — unperturbed tokens produce the clean attention pattern).
        """
        return self._delta_raw_state(image, mask, pixel_bbox, clean.tensors)

    def _predict_delta_windowed(
        self,
        image: np.ndarray,
        mask: np.ndarray,
        pixel_bbox: BBox,
        clean: CleanActivations,
    ) -> Prediction:
        raw = self._delta_raw_grid(image, mask, pixel_bbox, clean)
        if raw is None:
            return clean.prediction
        probabilities = self.prototypes.probabilities(self._mix_features(raw))
        return self._decode(probabilities, (image.shape[0], image.shape[1]))

    def _predict_delta_windowed_batch(
        self,
        image: np.ndarray,
        masks: np.ndarray,
        items: list[tuple[int, BBox]],
        clean: CleanActivations,
    ) -> list[Prediction]:
        """Splice each member's dirty window, then batch the global stages.

        The local feature extraction runs per member on its own window (the
        window sizes differ); the global attention mixing and the
        classification head run over the stacked spliced grids in the same
        cache-friendly chunks as :meth:`predict_batch`.  Attention carries
        the batch axis through every token operation unchanged, so per-grid
        results are bit-identical to the single-image delta path.
        """
        grids = [
            self._delta_raw_grid(image, masks[index], bbox, clean)
            for index, bbox in items
        ]
        live = [i for i, grid in enumerate(grids) if grid is not None]
        predictions: list[Prediction] = [clean.prediction] * len(items)
        if live:
            stacked = np.stack([grids[i] for i in live], axis=0)
            image_shape = (image.shape[0], image.shape[1])
            chunk = max(1, int(self.delta_batch_chunk))
            decoded: list[Prediction] = []
            for start in range(0, stacked.shape[0], chunk):
                probabilities = self.prototypes.probabilities(
                    self._mix_features(stacked[start : start + chunk])
                )
                decoded.extend(self._decode_batch(probabilities, image_shape))
            for i, prediction in zip(live, decoded):
                predictions[i] = prediction
        return predictions

    def _predict_delta_spliced_batch(
        self,
        image: np.ndarray,
        masks: np.ndarray,
        items: list[tuple[int, BBox, dict, Prediction]],
    ) -> tuple[list[Prediction], list[dict | None]]:
        """Windowed recompute of sparse members against explicit sources.

        Cross-generation reuse skips re-extracting the ancestor's patch
        tokens — only the relative dirty window is spliced — but the global
        attention stage (the parity-capped part of the transformer path) is
        always recomputed from the full spliced grid, in the same chunks as
        :meth:`_predict_delta_windowed_batch`; attention carries the batch
        axis through every token operation unchanged, so per-grid results
        are bit-identical however items mix clean and ancestor sources.
        """
        grids = [
            self._delta_raw_state(image, masks[index], bbox, source)
            for index, bbox, source, _ in items
        ]
        live = [i for i, grid in enumerate(grids) if grid is not None]
        predictions: list[Prediction] = [fallback for _, _, _, fallback in items]
        if live:
            stacked = np.stack([grids[i] for i in live], axis=0)
            image_shape = (image.shape[0], image.shape[1])
            chunk = max(1, int(self.delta_batch_chunk))
            decoded: list[Prediction] = []
            for start in range(0, stacked.shape[0], chunk):
                probabilities = self.prototypes.probabilities(
                    self._mix_features(stacked[start : start + chunk])
                )
                decoded.extend(self._decode_batch(probabilities, image_shape))
            for i, prediction in zip(live, decoded):
                predictions[i] = prediction
        return predictions, [
            None if grid is None else {"raw": grid} for grid in grids
        ]
