"""Transformer (DETR-like) simulated detector.

The defining architectural property reproduced here is *global attention*:
before classification, every cell's features are mixed with the features of
every other cell through a content-dependent softmax attention matrix.  Any
pixel in the image can therefore influence any prediction — the mechanism
the paper conjectures makes transformer detectors more susceptible to
butterfly-effect attacks ("the attention mechanisms connecting two arbitrary
regions in an image").
"""

from __future__ import annotations

import numpy as np

from repro.detection.prediction import Prediction
from repro.detectors.activation_cache import CleanActivations
from repro.detectors.base import (
    Detector,
    DetectorConfig,
    validate_image,
    validate_image_batch,
)
from repro.detectors.prototypes import PrototypeBank
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.features import CELL_FEATURE_DIM, GridFeatureExtractor
from repro.nn.incremental import (
    BBox,
    bbox_is_empty,
    dilate_bbox,
    pixel_bbox_to_cell_bbox,
)
from repro.nn.linear import Linear
from repro.nn.ops import grid_positional_encoding, layer_norm, softmax


def _flat_cell_indices(cell_bbox: BBox, cols: int) -> np.ndarray:
    """Row-major flat token indices of a cell rectangle.

    The rectangle order matches ``window_features``' (wr, wc, dim) reshape,
    so spliced windows and flat-index scatters agree element for element.
    """
    r0, r1, c0, c1 = cell_bbox
    return (np.arange(r0, r1)[:, None] * cols + np.arange(c0, c1)[None, :]).ravel()


class TransformerDetector(Detector):
    """Grid-token detector with global self-attention feature mixing.

    The forward pass is:

    1. extract raw per-cell features (the "patch embedding" input),
    2. embed them (seeded linear projection + 2-D positional encoding),
    3. run ``num_layers`` of multi-head self-attention to obtain contextual
       token embeddings,
    4. compute a content-dependent attention matrix from the contextual
       embeddings and use it to mix the *raw* cell features globally,
    5. classify the mixed features against the trained prototype bank and
       decode boxes exactly like the single-stage detector.

    Because step 4 mixes features across the whole image with softmax
    weights, a strong perturbation anywhere can capture attention mass from
    an object's cells and drag their mixed features away from the class
    prototype — changing class scores, box moments or both.

    Parameters
    ----------
    attention_mix:
        Weight ``α`` of the attention-mixed features; ``(1 - α)`` stays on
        the cell's own features.
    embed_dim:
        Dimension of the token embeddings used to compute attention.
    num_layers:
        Number of self-attention refinement layers.
    attention_sharpness:
        Multiplier on the attention logits; larger values concentrate
        attention on fewer cells.
    """

    architecture = "transformer"
    supports_incremental = True
    supports_delta_reuse = True

    def __init__(
        self,
        prototypes: PrototypeBank,
        config: DetectorConfig | None = None,
        seed: int = 0,
        attention_mix: float = 0.45,
        embed_dim: int = 16,
        num_heads: int = 2,
        num_layers: int = 2,
        attention_sharpness: float = 2.0,
    ) -> None:
        super().__init__(config, seed)
        if not 0.0 <= attention_mix <= 1.0:
            raise ValueError("attention_mix must be in [0, 1]")
        if attention_sharpness <= 0:
            raise ValueError("attention_sharpness must be positive")
        self.prototypes = prototypes
        self.attention_mix = attention_mix
        self.embed_dim = embed_dim
        self.attention_sharpness = attention_sharpness
        self.extractor = GridFeatureExtractor(cell=self.config.cell)

        rng = np.random.default_rng(seed)
        self.embedding = Linear(CELL_FEATURE_DIM, embed_dim, rng)
        self.layers = [
            MultiHeadSelfAttention(embed_dim, num_heads=num_heads, rng=rng)
            for _ in range(num_layers)
        ]
        self.query_proj = Linear(embed_dim, embed_dim, rng)
        self.key_proj = Linear(embed_dim, embed_dim, rng)
        self._last_mixing_attention: np.ndarray | None = None
        self._positional_cache: dict[tuple[int, int], np.ndarray] = {}

    @property
    def last_mixing_attention(self) -> np.ndarray | None:
        """The (tokens, tokens) attention matrix of the last forward pass."""
        return self._last_mixing_attention

    def _positional(self, rows: int, cols: int) -> np.ndarray:
        key = (rows, cols)
        if key not in self._positional_cache:
            self._positional_cache[key] = grid_positional_encoding(
                rows, cols, self.embed_dim
            )
        return self._positional_cache[key]

    def _attention_from_raw(self, raw: np.ndarray) -> np.ndarray:
        """Attention matrix from raw cell features ``(..., rows, cols, dim)``.

        Works on single images and batches alike; leading axes are carried
        through all token operations unchanged, so batched results are
        bit-identical to the per-image computation.
        """
        rows, cols = raw.shape[-3], raw.shape[-2]
        flat = raw.reshape(raw.shape[:-3] + (rows * cols, raw.shape[-1]))
        tokens = self.embedding(flat)
        tokens = layer_norm(tokens + self._positional(rows, cols), axis=-1)
        for layer in self.layers:
            tokens = layer(tokens)
        query = self.query_proj(tokens)
        key = self.key_proj(tokens)
        # Same scores/softmax as scaled_dot_product_attention, minus the
        # ``weights @ value`` product that function would also compute —
        # the mixing stage applies the weights to the *raw* features
        # itself, so the attended embeddings would be thrown away.
        temperature = np.sqrt(self.embed_dim) / self.attention_sharpness
        scores = query @ np.swapaxes(key, -1, -2) / temperature
        return softmax(scores, axis=-1)

    def attention_matrix(self, image: np.ndarray) -> np.ndarray:
        """Content-dependent (tokens, tokens) attention matrix for an image."""
        image = validate_image(image)
        return self._attention_from_raw(self.extractor(image))

    def _mixing_weights_rows(
        self,
        tokens: np.ndarray,
        rows: np.ndarray | None = None,
        dtype: np.dtype = np.float64,
    ) -> np.ndarray:
        """Mixing-attention rows for a subset of query tokens at a dtype.

        Same scores/softmax as the tail of :meth:`_attention_from_raw`
        (python-float temperature so float32 activations stay float32);
        ``rows=None`` yields the full (tokens, tokens) matrix.
        """
        row_tokens = tokens if rows is None else tokens[rows]
        query = self.query_proj.at(row_tokens, dtype)
        key = self.key_proj.at(tokens, dtype)
        temperature = float(np.sqrt(self.embed_dim) / self.attention_sharpness)
        scores = query @ key.T / temperature
        return softmax(scores, axis=-1)

    def _fidelity_state(self, clean: CleanActivations, dtype: np.dtype) -> dict:
        """Clean-scene attention state for the approximate delta path.

        Everything the windowed recompute splices against, derived once per
        activation dtype from the bundle's cached raw grid and memoized on
        ``clean.fidelity_state``: the flat raw features, the token
        embeddings *after each attention layer*, the full mixing-attention
        matrix and the mixed features.  Pure recompute cache — rebuilt
        lazily per worker when a bundle crosses a process boundary.
        """
        key = f"attn:{dtype.name}"
        state = clean.fidelity_state.get(key)
        if state is not None:
            return state
        raw = clean.tensors["raw"]
        rows, cols = raw.shape[0], raw.shape[1]
        flat = np.asarray(raw.reshape(rows * cols, raw.shape[-1]), dtype=dtype)
        pos = np.asarray(self._positional(rows, cols), dtype=dtype)
        tokens = [layer_norm(self.embedding.at(flat, dtype) + pos, axis=-1)]
        for layer in self.layers:
            tokens.append(layer.forward_rows(tokens[-1], None, dtype=dtype))
        weights = self._mixing_weights_rows(tokens[-1], None, dtype)
        state = {
            "grid": (rows, cols),
            "flat": flat,
            "pos": pos,
            "tokens": tokens,
            "weights": weights,
            "mixed": weights @ flat,
        }
        clean.fidelity_state[key] = state
        return state

    def _approx_windowed_grid(
        self,
        image: np.ndarray,
        mask: np.ndarray,
        pixel_bbox: BBox,
        clean: CleanActivations,
        fidelity,
    ) -> np.ndarray | None:
        """Blended (attention-mixed) feature grid under windowed attention.

        The bounded-error counterpart of splice + :meth:`_mix_features`:

        * dirty cells (the mask's spliced window) get exact raw features
          and exact stage-0 embeddings;
        * each attention layer refreshes only the rows of the dirty window
          dilated by ``fidelity.attention_window`` cells — rows outside
          keep the clean scene's cached outputs (layer-1 window rows are
          exact, deeper layers accumulate bounded staleness);
        * mixing rows inside the window are recomputed from the refreshed
          tokens; rows outside propagate the raw-feature delta *exactly*
          through the clean scene's stale attention weights.

        ``attention_window=None`` refreshes every row (full recompute at
        the requested dtype).  Returns ``None`` when no cell is touched.
        """
        grid_shape = self.extractor.grid_shape(image)
        rows, cols = grid_shape
        cell_bbox = pixel_bbox_to_cell_bbox(
            dilate_bbox(pixel_bbox, 1, (image.shape[0], image.shape[1])),
            self.config.cell,
            grid_shape,
        )
        if bbox_is_empty(cell_bbox):
            return None
        dtype = fidelity.numpy_dtype
        state = self._fidelity_state(clean, dtype)
        dirty = _flat_cell_indices(cell_bbox, cols)
        if fidelity.attention_window is None:
            window = np.arange(rows * cols)
        else:
            window = _flat_cell_indices(
                dilate_bbox(cell_bbox, fidelity.attention_window, grid_shape), cols
            )
        flat_p = state["flat"].copy()
        patch = self.extractor.window_features(image, mask, cell_bbox)
        flat_p[dirty] = np.asarray(
            patch.reshape(-1, patch.shape[-1]), dtype=dtype
        )
        tokens = state["tokens"][0].copy()
        tokens[dirty] = layer_norm(
            self.embedding.at(flat_p[dirty], dtype) + state["pos"][dirty], axis=-1
        )
        for depth, layer in enumerate(self.layers):
            refreshed = state["tokens"][depth + 1].copy()
            refreshed[window] = layer.forward_rows(tokens, window, dtype=dtype)
            tokens = refreshed
        window_weights = self._mixing_weights_rows(tokens, window, dtype)
        raw_delta = flat_p[dirty] - state["flat"][dirty]
        mixed = state["mixed"] + state["weights"][:, dirty] @ raw_delta
        mixed[window] = window_weights @ flat_p
        alpha = float(self.attention_mix)
        blended = (1.0 - alpha) * flat_p + alpha * mixed
        return blended.reshape(rows, cols, flat_p.shape[-1])

    def _approx_full_grid(self, raw: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Full blended feature grid of one image at a reduced dtype.

        Dense masks have no dirty window to bound, so the only available
        approximation is precision; attention itself is computed in full.
        """
        rows, cols = raw.shape[0], raw.shape[1]
        flat = np.asarray(raw.reshape(rows * cols, raw.shape[-1]), dtype=dtype)
        pos = np.asarray(self._positional(rows, cols), dtype=dtype)
        tokens = layer_norm(self.embedding.at(flat, dtype) + pos, axis=-1)
        for layer in self.layers:
            tokens = layer.forward_rows(tokens, None, dtype=dtype)
        weights = self._mixing_weights_rows(tokens, None, dtype)
        mixed = weights @ flat
        alpha = float(self.attention_mix)
        blended = (1.0 - alpha) * flat + alpha * mixed
        return blended.reshape(raw.shape)

    def predict_batch_at(self, images: np.ndarray, fidelity=None) -> list:
        """Batch prediction at a fidelity; only reduced precision applies
        to dense (windowless) evaluation — anything else answers exactly."""
        if fidelity is None or fidelity.numpy_dtype == np.float64:
            return self.predict_batch(images)
        images = validate_image_batch(images)
        image_shape = (images.shape[1], images.shape[2])
        dtype = fidelity.numpy_dtype
        predictions = []
        for image in images:
            blended = self._approx_full_grid(self.extractor(image), dtype)
            probabilities = self.prototypes.probabilities(blended)
            predictions.append(self._decode(probabilities, image_shape))
        return predictions

    def _mix_features(self, raw: np.ndarray) -> np.ndarray:
        """Blend raw cell features with their attention-mixed counterpart."""
        rows, cols = raw.shape[-3], raw.shape[-2]
        flat_raw = raw.reshape(raw.shape[:-3] + (rows * cols, raw.shape[-1]))
        weights = self._attention_from_raw(raw)
        self._last_mixing_attention = weights
        mixed = weights @ flat_raw
        blended = (1.0 - self.attention_mix) * flat_raw + self.attention_mix * mixed
        return blended.reshape(raw.shape)

    def backbone_features(self, image: np.ndarray) -> np.ndarray:
        """Attention-mixed cell features (rows, cols, feature_dim)."""
        image = validate_image(image)
        return self._mix_features(self.extractor(image))

    def backbone_features_batch(self, images: np.ndarray) -> np.ndarray:
        """Batched :meth:`backbone_features`; returns (B, rows, cols, dim).

        One embedding/attention pass serves the whole stack; per-image
        results are bit-identical to the single-image path.  The
        :attr:`last_mixing_attention` buffer holds the (B, tokens, tokens)
        stack of the most recent forward pass (the last internal chunk when
        called through :meth:`predict_batch`).
        """
        images = validate_image_batch(images)
        return self._mix_features(self.extractor.batch(images))

    def cell_probabilities(self, image: np.ndarray) -> np.ndarray:
        """Per-cell class probabilities (rows, cols, num_classes + 1)."""
        return self.prototypes.probabilities(self.backbone_features(image))

    def cell_probabilities_batch(self, images: np.ndarray) -> np.ndarray:
        """Batched per-cell class probabilities (B, rows, cols, classes + 1)."""
        return self.prototypes.probabilities(self.backbone_features_batch(images))

    def predict(self, image: np.ndarray) -> Prediction:
        image = validate_image(image)
        probabilities = self.cell_probabilities(image)
        return self._decode(probabilities, (image.shape[0], image.shape[1]))

    def predict_batch(self, images: np.ndarray) -> list[Prediction]:
        """Vectorised batch prediction, processed in cache-friendly chunks."""
        images = validate_image_batch(images)
        image_shape = (images.shape[1], images.shape[2])
        chunk = max(1, int(self.batch_chunk))
        predictions: list[Prediction] = []
        for start in range(0, images.shape[0], chunk):
            probabilities = self.cell_probabilities_batch(images[start : start + chunk])
            predictions.extend(self._decode_batch(probabilities, image_shape))
        return predictions

    # ------------------------------------------------------------------
    # Incremental (dirty-region) inference
    # ------------------------------------------------------------------

    def clean_activations(self, image: np.ndarray) -> CleanActivations:
        """Cache the clean scene's raw (pre-attention) patch tokens.

        Only the patch-embedding input — the raw per-cell feature grid — is
        cached: the attention stage mixes every token with every other one,
        so a perturbation anywhere invalidates the mixed features globally
        and attention must always be recomputed from the spliced grid.
        """
        image = validate_image(image)
        clean_image = np.clip(image + 0.0, 0.0, 255.0)
        raw = self.extractor(clean_image)
        probabilities = self.prototypes.probabilities(self._mix_features(raw))
        prediction = self._decode(probabilities, (image.shape[0], image.shape[1]))
        return CleanActivations(
            clean_image=clean_image, prediction=prediction, tensors={"raw": raw}
        )

    def _delta_raw_state(
        self,
        image: np.ndarray,
        mask: np.ndarray,
        pixel_bbox: BBox,
        source: dict[str, np.ndarray],
    ) -> np.ndarray | None:
        """Raw patch tokens after splicing the ``pixel_bbox`` window into a
        ``source`` raw grid (the clean bundle's, or an evaluated ancestor's
        stored tokens for cross-generation reuse); ``None`` when no cell is
        touched.  Tokens outside the window read identical input pixels, so
        the spliced grid is bit-identical to a full extraction; the global
        attention stage is always recomputed from it.
        """
        grid_shape = self.extractor.grid_shape(image)
        cell_bbox = pixel_bbox_to_cell_bbox(
            dilate_bbox(pixel_bbox, 1, (image.shape[0], image.shape[1])),
            self.config.cell,
            grid_shape,
        )
        if bbox_is_empty(cell_bbox):
            return None
        raw = source["raw"].copy()
        cr0, cr1, cc0, cc1 = cell_bbox
        raw[cr0:cr1, cc0:cc1] = self.extractor.window_features(image, mask, cell_bbox)
        return raw

    def _delta_raw_grid(
        self,
        image: np.ndarray,
        mask: np.ndarray,
        pixel_bbox: BBox,
        clean: CleanActivations,
    ) -> np.ndarray | None:
        """Raw patch tokens of the perturbed image, spliced into the cached
        clean grid; ``None`` when no cell is touched (clean prediction
        stands — unperturbed tokens produce the clean attention pattern).
        """
        return self._delta_raw_state(image, mask, pixel_bbox, clean.tensors)

    def _predict_delta_windowed(
        self,
        image: np.ndarray,
        mask: np.ndarray,
        pixel_bbox: BBox,
        clean: CleanActivations,
    ) -> Prediction:
        raw = self._delta_raw_grid(image, mask, pixel_bbox, clean)
        if raw is None:
            return clean.prediction
        probabilities = self.prototypes.probabilities(self._mix_features(raw))
        return self._decode(probabilities, (image.shape[0], image.shape[1]))

    def _predict_delta_windowed_batch(
        self,
        image: np.ndarray,
        masks: np.ndarray,
        items: list[tuple[int, BBox]],
        clean: CleanActivations,
        fidelity=None,
    ) -> list[Prediction]:
        """Splice each member's dirty window, then batch the global stages.

        The local feature extraction runs per member on its own window (the
        window sizes differ); the global attention mixing and the
        classification head run over the stacked spliced grids in the same
        cache-friendly chunks as :meth:`predict_batch`.  Attention carries
        the batch axis through every token operation unchanged, so per-grid
        results are bit-identical to the single-image delta path.

        An approximate ``fidelity`` routes through the windowed-attention
        recompute (:meth:`_approx_windowed_grid`) instead — the opt-in
        bounded-error path; ``None``/exact is the unchanged parity path.
        """
        if fidelity is not None and not fidelity.is_exact:
            return self._approx_delta_batch(image, masks, items, clean, fidelity)
        grids = [
            self._delta_raw_grid(image, masks[index], bbox, clean)
            for index, bbox in items
        ]
        live = [i for i, grid in enumerate(grids) if grid is not None]
        predictions: list[Prediction] = [clean.prediction] * len(items)
        if live:
            stacked = np.stack([grids[i] for i in live], axis=0)
            image_shape = (image.shape[0], image.shape[1])
            chunk = max(1, int(self.delta_batch_chunk))
            decoded: list[Prediction] = []
            for start in range(0, stacked.shape[0], chunk):
                probabilities = self.prototypes.probabilities(
                    self._mix_features(stacked[start : start + chunk])
                )
                decoded.extend(self._decode_batch(probabilities, image_shape))
            for i, prediction in zip(live, decoded):
                predictions[i] = prediction
        return predictions

    def _approx_delta_batch(
        self,
        image: np.ndarray,
        masks: np.ndarray,
        items: list[tuple[int, BBox]],
        clean: CleanActivations,
        fidelity,
    ) -> list[Prediction]:
        """Windowed-attention delta evaluation of a sparse population.

        Members are grouped by their (dirty, window) index shapes — in the
        NSGA sparse regime most offspring share a patch geometry — and each
        group runs the bounded-error recompute *batched* over its members
        (one BLAS call per stage instead of a per-mask Python loop); the
        classification head and decode then run over the stacked grids in
        the same chunks as the exact path.  Per-member results match
        :meth:`_approx_windowed_grid` up to BLAS-blocking noise (pinned by
        the fidelity test suite).  Untouched members answer the *exact*
        clean prediction — approximation never degrades an evaluation the
        cache already answers for free.
        """
        plane = (image.shape[0], image.shape[1])
        grid_shape = self.extractor.grid_shape(image)
        grid_rows, grid_cols = grid_shape
        dtype = fidelity.numpy_dtype
        state = self._fidelity_state(clean, dtype)
        predictions: list[Prediction] = [clean.prediction] * len(items)
        groups: dict[tuple[int, int], list] = {}
        for pos, (index, bbox) in enumerate(items):
            cell_bbox = pixel_bbox_to_cell_bbox(
                dilate_bbox(bbox, 1, plane), self.config.cell, grid_shape
            )
            if bbox_is_empty(cell_bbox):
                continue
            dirty = _flat_cell_indices(cell_bbox, grid_cols)
            if fidelity.attention_window is None:
                window = np.arange(grid_rows * grid_cols)
            else:
                window = _flat_cell_indices(
                    dilate_bbox(cell_bbox, fidelity.attention_window, grid_shape),
                    grid_cols,
                )
            groups.setdefault((dirty.size, window.size), []).append(
                (pos, index, cell_bbox, dirty, window)
            )
        live: list[int] = []
        grids: list[np.ndarray] = []
        for group in groups.values():
            blended = self._approx_windowed_group(image, masks, group, state, fidelity)
            for (pos, _, _, _, _), grid in zip(group, blended):
                live.append(pos)
                grids.append(grid.reshape(grid_rows, grid_cols, grid.shape[-1]))
        if grids:
            # Head/decode in deterministic population order, independent of
            # the grouping that produced the grids.
            order = np.argsort(live, kind="stable")
            stacked = np.stack([grids[i] for i in order], axis=0)
            image_shape = plane
            chunk = max(1, int(self.delta_batch_chunk))
            decoded: list[Prediction] = []
            for start in range(0, stacked.shape[0], chunk):
                probabilities = self.prototypes.probabilities(
                    stacked[start : start + chunk]
                )
                decoded.extend(self._decode_batch(probabilities, image_shape))
            for i, prediction in zip(order, decoded):
                predictions[live[i]] = prediction
        return predictions

    def _approx_windowed_group(
        self,
        image: np.ndarray,
        masks: np.ndarray,
        group: list,
        state: dict,
        fidelity,
    ) -> np.ndarray:
        """Batched windowed recompute of one same-shape group.

        ``group`` entries are ``(pos, index, cell_bbox, dirty, window)``
        with equal ``dirty``/``window`` sizes; returns the ``(B, tokens,
        dim)`` blended features.  Same algorithm as
        :meth:`_approx_windowed_grid` with a batch axis: splice dirty raw
        features, refresh stage-0 embeddings of dirty rows, refresh each
        attention layer only on the window rows, then recompute mixing
        rows inside the window and propagate the raw delta exactly through
        the stale clean weights outside it.
        """
        dtype = fidelity.numpy_dtype
        count = len(group)
        tokens_n, feature_dim = state["flat"].shape
        dirty = np.stack([entry[3] for entry in group])
        window = np.stack([entry[4] for entry in group])
        batch = np.arange(count)[:, None]
        flat_p = np.broadcast_to(state["flat"], (count, tokens_n, feature_dim)).copy()
        for g, (_, index, cell_bbox, dirty_i, _) in enumerate(group):
            patch = self.extractor.window_features(image, masks[index], cell_bbox)
            flat_p[g, dirty_i] = np.asarray(
                patch.reshape(-1, feature_dim), dtype=dtype
            )
        flat_dirty = flat_p[batch, dirty]
        tokens = np.broadcast_to(
            state["tokens"][0], (count,) + state["tokens"][0].shape
        ).copy()
        tokens[batch, dirty] = layer_norm(
            self.embedding.at(flat_dirty, dtype) + state["pos"][dirty], axis=-1
        )
        for depth, layer in enumerate(self.layers):
            refreshed = np.broadcast_to(state["tokens"][depth + 1], tokens.shape).copy()
            refreshed[batch, window] = layer.forward_rows_batch(
                tokens, window, dtype=dtype
            )
            tokens = refreshed
        row_tokens = tokens[batch, window]
        query = self.query_proj.at(row_tokens, dtype)
        key = self.key_proj.at(tokens, dtype)
        temperature = float(np.sqrt(self.embed_dim) / self.attention_sharpness)
        window_weights = softmax(
            query @ np.swapaxes(key, -1, -2) / temperature, axis=-1
        )
        raw_delta = flat_dirty - state["flat"][dirty]
        stale = np.swapaxes(state["weights"][:, dirty], 0, 1)
        mixed = state["mixed"] + stale @ raw_delta
        mixed[batch, window] = window_weights @ flat_p
        alpha = float(self.attention_mix)
        return (1.0 - alpha) * flat_p + alpha * mixed

    def _predict_delta_spliced_batch(
        self,
        image: np.ndarray,
        masks: np.ndarray,
        items: list[tuple[int, BBox, dict, Prediction]],
    ) -> tuple[list[Prediction], list[dict | None]]:
        """Windowed recompute of sparse members against explicit sources.

        Cross-generation reuse skips re-extracting the ancestor's patch
        tokens — only the relative dirty window is spliced — but the global
        attention stage (the parity-capped part of the transformer path) is
        always recomputed from the full spliced grid, in the same chunks as
        :meth:`_predict_delta_windowed_batch`; attention carries the batch
        axis through every token operation unchanged, so per-grid results
        are bit-identical however items mix clean and ancestor sources.

        The temporal frame-to-frame derivation (:meth:`~repro.detectors.
        base.Detector.clean_activations_delta`) also routes here, with a
        *zero* mask and the previous frame's clean tensors as the source:
        ``clip(image + 0)`` is the new frame's clean image, so splicing the
        inter-frame diff window into the previous ``raw`` grid yields the
        new frame's clean activations bit-exactly, and the returned state
        dicts use the clean bundle's stage name (``raw``).
        """
        grids = [
            self._delta_raw_state(image, masks[index], bbox, source)
            for index, bbox, source, _ in items
        ]
        live = [i for i, grid in enumerate(grids) if grid is not None]
        predictions: list[Prediction] = [fallback for _, _, _, fallback in items]
        if live:
            stacked = np.stack([grids[i] for i in live], axis=0)
            image_shape = (image.shape[0], image.shape[1])
            chunk = max(1, int(self.delta_batch_chunk))
            decoded: list[Prediction] = []
            for start in range(0, stacked.shape[0], chunk):
                probabilities = self.prototypes.probabilities(
                    self._mix_features(stacked[start : start + chunk])
                )
                decoded.extend(self._decode_batch(probabilities, image_shape))
            for i, prediction in zip(live, decoded):
                predictions[i] = prediction
        return predictions, [
            None if grid is None else {"raw": grid} for grid in grids
        ]
