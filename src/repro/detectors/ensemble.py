"""Detector ensembles.

The paper's Section IV-B extends the attack to ensembles of detectors
(Table I uses 16-model ensembles).  An ensemble here is simply a collection
of detectors that can be attacked jointly; a fused prediction (majority-vote
style box merging) is also provided because ensembling is commonly used as
an adversarial defence — the very setting the paper argues the butterfly
attack can still break.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.detection.boxes import BoundingBox, iou
from repro.detection.nms import non_max_suppression
from repro.detection.prediction import Prediction
from repro.detectors.activation_cache import CleanActivations
from repro.detectors.base import Detector
from repro.nn.incremental import BBox


@dataclass
class DetectorEnsemble:
    """A fixed set of detectors attacked (and optionally fused) together."""

    detectors: list[Detector]

    def __post_init__(self) -> None:
        if not self.detectors:
            raise ValueError("an ensemble needs at least one detector")

    def __len__(self) -> int:
        return len(self.detectors)

    def __iter__(self) -> Iterator[Detector]:
        return iter(self.detectors)

    def __getitem__(self, index: int) -> Detector:
        return self.detectors[index]

    @property
    def name(self) -> str:
        architectures = sorted({d.architecture for d in self.detectors})
        return f"ensemble[{'+'.join(architectures)}]x{len(self.detectors)}"

    def predict_all(self, image: np.ndarray) -> list[Prediction]:
        """Run every member detector on the image."""
        return [detector.predict(image) for detector in self.detectors]

    def predict_batch_all(self, images: np.ndarray) -> list[list[Prediction]]:
        """Run every member on a stack of images ``(B, L, W, 3)``.

        Returns one list of per-image predictions per member, i.e.
        ``result[m][b]`` is member ``m``'s prediction on image ``b``.  Each
        member uses its vectorised :meth:`~repro.detectors.base.Detector.
        predict_batch` fast path (or the generic loop fallback), so this is
        the batched equivalent of calling :meth:`predict_all` per image.
        """
        return [detector.predict_batch(images) for detector in self.detectors]

    def clean_activations_all(
        self, image: np.ndarray
    ) -> list[CleanActivations | None]:
        """Fan the clean-scene activation cache out to every member.

        Members that do not support incremental inference yield ``None``
        and simply fall back to the dense path in the delta calls below.
        """
        return [detector.clean_activations(image) for detector in self.detectors]

    def predict_delta_batch_all(
        self,
        image: np.ndarray,
        masks: np.ndarray,
        dirty_bounds: list[BBox | None] | None = None,
        clean_all: list[CleanActivations | None] | None = None,
    ) -> list[list[Prediction]]:
        """Per-member incremental population predictions.

        ``result[m][b]`` is member ``m``'s prediction on ``clip(image +
        masks[b], 0, 255)``; each member routes its sparse masks through its
        own cached clean activations (``clean_all`` from
        :meth:`clean_activations_all`), bit-identical to
        :meth:`predict_batch_all` on the stacked perturbed images.
        """
        if clean_all is None:
            clean_all = [None] * len(self.detectors)
        if len(clean_all) != len(self.detectors):
            raise ValueError(
                f"expected {len(self.detectors)} activation bundles, "
                f"got {len(clean_all)}"
            )
        return [
            detector.predict_delta_batch(image, masks, dirty_bounds, clean)
            for detector, clean in zip(self.detectors, clean_all)
        ]

    def predict_fused(
        self,
        image: np.ndarray,
        vote_fraction: float = 0.5,
        iou_threshold: float = 0.5,
        predictions: Sequence[Prediction] | None = None,
    ) -> Prediction:
        """Consensus prediction: keep boxes supported by enough members.

        Boxes from all members are clustered greedily by same-class IoU; a
        cluster whose supporting members reach ``vote_fraction`` of the
        ensemble produces one averaged box.

        ``predictions`` optionally supplies one precomputed prediction per
        member (e.g. from the incremental delta path) so fusion skips the
        per-member ``predict`` calls; the fused output is identical as long
        as the supplied predictions match what :meth:`predict_all` would
        return on ``image``.
        """
        if not 0.0 < vote_fraction <= 1.0:
            raise ValueError("vote_fraction must be in (0, 1]")
        if predictions is None:
            predictions = self.predict_all(image)
        elif len(predictions) != len(self.detectors):
            raise ValueError(
                f"expected {len(self.detectors)} member predictions, "
                f"got {len(predictions)}"
            )
        all_boxes: list[tuple[int, BoundingBox]] = []
        for member_index, prediction in enumerate(predictions):
            for box in prediction.valid_boxes:
                all_boxes.append((member_index, box))
        all_boxes.sort(key=lambda item: item[1].score, reverse=True)

        used = [False] * len(all_boxes)
        fused: list[BoundingBox] = []
        min_votes = max(1, int(np.ceil(vote_fraction * len(self.detectors))))
        for i, (_, seed_box) in enumerate(all_boxes):
            if used[i]:
                continue
            cluster = [seed_box]
            members = {all_boxes[i][0]}
            used[i] = True
            for j in range(i + 1, len(all_boxes)):
                if used[j]:
                    continue
                member_index, candidate = all_boxes[j]
                if candidate.cl == seed_box.cl and iou(seed_box, candidate) >= iou_threshold:
                    cluster.append(candidate)
                    members.add(member_index)
                    used[j] = True
            if len(members) >= min_votes:
                fused.append(
                    BoundingBox(
                        cl=seed_box.cl,
                        x=float(np.mean([b.x for b in cluster])),
                        y=float(np.mean([b.y for b in cluster])),
                        l=float(np.mean([b.l for b in cluster])),
                        w=float(np.mean([b.w for b in cluster])),
                        score=float(np.mean([b.score for b in cluster])),
                    )
                )
        return non_max_suppression(fused, iou_threshold=iou_threshold)

    @staticmethod
    def from_detectors(detectors: Sequence[Detector]) -> "DetectorEnsemble":
        """Build an ensemble from any sequence of detectors."""
        return DetectorEnsemble(list(detectors))
