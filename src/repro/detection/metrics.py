"""Standard detection metrics: precision/recall, AP, mAP, agreement."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.detection.boxes import BoundingBox, iou
from repro.detection.matching import greedy_match
from repro.detection.prediction import Prediction


def precision_recall(
    predictions: Prediction | Sequence[BoundingBox],
    ground_truth: Prediction | Sequence[BoundingBox],
    iou_threshold: float = 0.5,
) -> tuple[float, float]:
    """Precision and recall of a prediction against ground truth.

    A predicted box counts as a true positive when a same-class ground-truth
    box overlaps it with IoU >= ``iou_threshold``; each ground-truth box can
    satisfy at most one prediction (highest score first).
    """
    if isinstance(predictions, Prediction):
        pred_boxes = predictions.sorted_by_score().valid_boxes
    else:
        pred_boxes = sorted(
            [b for b in predictions if b.is_valid], key=lambda b: b.score, reverse=True
        )
    if isinstance(ground_truth, Prediction):
        gt_boxes = ground_truth.valid_boxes
    else:
        gt_boxes = [b for b in ground_truth if b.is_valid]

    matched_gt: set[int] = set()
    true_positives = 0
    for pred in pred_boxes:
        best_iou, best_idx = 0.0, -1
        for gt_idx, gt in enumerate(gt_boxes):
            if gt_idx in matched_gt or gt.cl != pred.cl:
                continue
            overlap = iou(pred, gt)
            if overlap > best_iou:
                best_iou, best_idx = overlap, gt_idx
        if best_idx >= 0 and best_iou >= iou_threshold:
            true_positives += 1
            matched_gt.add(best_idx)

    precision = true_positives / len(pred_boxes) if pred_boxes else 0.0
    recall = true_positives / len(gt_boxes) if gt_boxes else 0.0
    return precision, recall


def average_precision(
    predictions: Sequence[tuple[Prediction, Prediction]],
    class_id: int,
    iou_threshold: float = 0.5,
) -> float:
    """11-point interpolated average precision for one class.

    Parameters
    ----------
    predictions:
        A sequence of ``(prediction, ground_truth)`` pairs, one per image.
    class_id:
        The object class to evaluate.
    """
    scored: list[tuple[float, bool]] = []
    total_gt = 0
    for prediction, ground_truth in predictions:
        gt_boxes = [b for b in ground_truth.valid_boxes if b.cl == class_id]
        total_gt += len(gt_boxes)
        matched: set[int] = set()
        pred_boxes = sorted(
            prediction.boxes_of_class(class_id), key=lambda b: b.score, reverse=True
        )
        for pred in pred_boxes:
            best_iou, best_idx = 0.0, -1
            for gt_idx, gt in enumerate(gt_boxes):
                if gt_idx in matched:
                    continue
                overlap = iou(pred, gt)
                if overlap > best_iou:
                    best_iou, best_idx = overlap, gt_idx
            is_tp = best_idx >= 0 and best_iou >= iou_threshold
            if is_tp:
                matched.add(best_idx)
            scored.append((pred.score, is_tp))

    if total_gt == 0 or not scored:
        return 0.0

    scored.sort(key=lambda item: item[0], reverse=True)
    tp_cumulative = 0
    precisions, recalls = [], []
    for rank, (_, is_tp) in enumerate(scored, start=1):
        if is_tp:
            tp_cumulative += 1
        precisions.append(tp_cumulative / rank)
        recalls.append(tp_cumulative / total_gt)

    ap = 0.0
    for recall_point in np.linspace(0.0, 1.0, 11):
        candidates = [p for p, r in zip(precisions, recalls) if r >= recall_point]
        ap += max(candidates) if candidates else 0.0
    return ap / 11.0


def mean_average_precision(
    predictions: Sequence[tuple[Prediction, Prediction]],
    class_ids: Sequence[int],
    iou_threshold: float = 0.5,
) -> float:
    """Mean of per-class average precision over ``class_ids``."""
    if not class_ids:
        return 0.0
    aps = [average_precision(predictions, c, iou_threshold) for c in class_ids]
    return float(np.mean(aps))


def prediction_agreement(
    first: Prediction, second: Prediction, min_iou: float = 0.5
) -> float:
    """Fraction of first-prediction boxes that the second prediction agrees on.

    Agreement requires a same-class box with IoU above ``min_iou``.  This is
    a convenience metric (1.0 = identical detections) used by the analysis
    and experiment reporting code.
    """
    first_boxes = first.valid_boxes
    if not first_boxes:
        return 1.0 if not second.valid_boxes else 0.0
    match = greedy_match(first, second, same_class_only=True, min_iou=min_iou)
    return match.num_matched / len(first_boxes)
