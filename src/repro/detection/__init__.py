"""Object-detection substrate: boxes, predictions, matching and metrics.

This package provides everything the attack needs to talk about detector
output: the :class:`BoundingBox` representation used throughout the paper
(class, centre, length, width), intersection-over-union, non-maximum
suppression, prediction containers, matching between two predictions,
the detection-error taxonomy of Section V-B and standard metrics.
"""

from repro.detection.boxes import (
    BACKGROUND_CLASS,
    BoundingBox,
    box_area,
    box_intersection_area,
    box_union_area,
    boxes_overlap,
    clip_box_to_image,
    iou,
)
from repro.detection.prediction import Prediction
from repro.detection.nms import non_max_suppression
from repro.detection.matching import (
    MatchResult,
    greedy_match,
    hungarian_match,
    match_predictions,
)
from repro.detection.errors import (
    ErrorType,
    PredictionTransition,
    classify_transitions,
    count_error_types,
)
from repro.detection.metrics import (
    average_precision,
    mean_average_precision,
    precision_recall,
    prediction_agreement,
)

__all__ = [
    "BACKGROUND_CLASS",
    "BoundingBox",
    "box_area",
    "box_intersection_area",
    "box_union_area",
    "boxes_overlap",
    "clip_box_to_image",
    "iou",
    "Prediction",
    "non_max_suppression",
    "MatchResult",
    "greedy_match",
    "hungarian_match",
    "match_predictions",
    "ErrorType",
    "PredictionTransition",
    "classify_transitions",
    "count_error_types",
    "average_precision",
    "mean_average_precision",
    "precision_recall",
    "prediction_agreement",
]
