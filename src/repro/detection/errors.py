"""Detection-error taxonomy of Section V-B.

The paper lists five qualitative impacts of the butterfly effect attack:

1. the bounding box changes its size,
2. TP becomes FN (a previously detected object disappears),
3. TN becomes FP (a ghost object appears),
4. FN becomes TP (a previously missed object is now detected),
5. FP becomes TN (a previous ghost object disappears).

:func:`classify_transitions` compares the clean prediction, the perturbed
prediction and (optionally) the ground truth, and labels every observed
transition with one of these categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

from repro.detection.boxes import BoundingBox, iou
from repro.detection.matching import hungarian_match
from repro.detection.prediction import Prediction


class ErrorType(Enum):
    """The qualitative outcome categories of Section V-B."""

    UNCHANGED = "unchanged"
    BOX_CHANGED = "box_changed"
    CLASS_CHANGED = "class_changed"
    TP_TO_FN = "tp_to_fn"
    TN_TO_FP = "tn_to_fp"
    FN_TO_TP = "fn_to_tp"
    FP_TO_TN = "fp_to_tn"


@dataclass(frozen=True)
class PredictionTransition:
    """One observed change between clean and perturbed predictions."""

    error_type: ErrorType
    clean_box: Optional[BoundingBox]
    perturbed_box: Optional[BoundingBox]
    iou: float

    def describe(self) -> str:
        """A short human-readable description of the transition."""
        parts = [self.error_type.value]
        if self.clean_box is not None:
            parts.append(f"clean=cl{self.clean_box.cl}")
        if self.perturbed_box is not None:
            parts.append(f"perturbed=cl{self.perturbed_box.cl}")
        parts.append(f"iou={self.iou:.2f}")
        return " ".join(parts)


def _matches_ground_truth(
    box: BoundingBox, ground_truth: Sequence[BoundingBox], iou_threshold: float
) -> bool:
    """True when ``box`` overlaps a same-class ground-truth object."""
    for gt in ground_truth:
        if gt.is_valid and gt.cl == box.cl and iou(gt, box) >= iou_threshold:
            return True
    return False


def classify_transitions(
    clean: Prediction,
    perturbed: Prediction,
    ground_truth: Optional[Prediction | Sequence[BoundingBox]] = None,
    iou_threshold: float = 0.5,
    box_change_tolerance: float = 0.95,
) -> list[PredictionTransition]:
    """Classify every change between the clean and perturbed predictions.

    Without ground truth, the clean prediction is treated as correct (the
    paper's assumption "the generated prediction f(img) is correct"), so a
    disappearing clean box is a TP→FN and a new perturbed box is a TN→FP.
    With ground truth, new boxes that actually overlap an unmatched true
    object are classified as FN→TP instead, and disappearing boxes that did
    *not* correspond to a true object are classified FP→TN.

    Parameters
    ----------
    iou_threshold:
        Overlap required to consider a box matched (to the other prediction
        or to the ground truth).
    box_change_tolerance:
        Matched same-class pairs with IoU below this value (but above the
        matching threshold) are reported as ``BOX_CHANGED``.
    """
    gt_boxes: list[BoundingBox] = []
    if ground_truth is not None:
        if isinstance(ground_truth, Prediction):
            gt_boxes = ground_truth.valid_boxes
        else:
            gt_boxes = [b for b in ground_truth if b.is_valid]

    transitions: list[PredictionTransition] = []
    clean_boxes = clean.valid_boxes
    perturbed_boxes = perturbed.valid_boxes

    match = hungarian_match(
        clean_boxes, perturbed_boxes, same_class_only=False, min_iou=0.0
    )

    for ref_idx, cand_idx, overlap in match.pairs:
        clean_box = clean_boxes[ref_idx]
        perturbed_box = perturbed_boxes[cand_idx]
        if overlap < iou_threshold:
            # Treat as an unmatched pair: the clean box disappeared and the
            # perturbed box is new; handled below by re-adding the indices.
            match.unmatched_reference.append(ref_idx)
            match.unmatched_candidate.append(cand_idx)
            continue
        if clean_box.cl != perturbed_box.cl:
            transitions.append(
                PredictionTransition(
                    ErrorType.CLASS_CHANGED, clean_box, perturbed_box, overlap
                )
            )
        elif overlap < box_change_tolerance:
            transitions.append(
                PredictionTransition(
                    ErrorType.BOX_CHANGED, clean_box, perturbed_box, overlap
                )
            )
        else:
            transitions.append(
                PredictionTransition(
                    ErrorType.UNCHANGED, clean_box, perturbed_box, overlap
                )
            )

    for ref_idx in match.unmatched_reference:
        clean_box = clean_boxes[ref_idx]
        if gt_boxes and not _matches_ground_truth(clean_box, gt_boxes, iou_threshold):
            error = ErrorType.FP_TO_TN
        else:
            error = ErrorType.TP_TO_FN
        transitions.append(PredictionTransition(error, clean_box, None, 0.0))

    for cand_idx in match.unmatched_candidate:
        perturbed_box = perturbed_boxes[cand_idx]
        if gt_boxes and _matches_ground_truth(perturbed_box, gt_boxes, iou_threshold):
            error = ErrorType.FN_TO_TP
        else:
            error = ErrorType.TN_TO_FP
        transitions.append(PredictionTransition(error, None, perturbed_box, 0.0))

    return transitions


def count_error_types(
    transitions: Sequence[PredictionTransition],
) -> dict[ErrorType, int]:
    """Histogram of error types over a list of transitions."""
    counts = {error: 0 for error in ErrorType}
    for transition in transitions:
        counts[transition.error_type] += 1
    return counts
