"""Matching boxes between two predictions (clean vs perturbed, or pred vs GT).

Two matchers are provided:

* :func:`greedy_match` — the paper's implicit strategy in Algorithm 1: for
  every clean box, take the same-class perturbed box with the largest IoU
  (boxes may be reused, matching the paper's inner ``max``).
* :func:`hungarian_match` — a globally optimal one-to-one assignment via the
  Hungarian algorithm, used by the metrics module for TP/FP/FN counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.detection.boxes import BoundingBox, iou
from repro.detection.prediction import Prediction


@dataclass
class MatchResult:
    """Result of matching ``reference`` boxes against ``candidate`` boxes.

    Attributes
    ----------
    pairs:
        List of ``(reference_index, candidate_index, iou)`` triples.
    unmatched_reference:
        Indices of reference boxes that found no partner.
    unmatched_candidate:
        Indices of candidate boxes that were not used by any pair.
    """

    pairs: list[tuple[int, int, float]] = field(default_factory=list)
    unmatched_reference: list[int] = field(default_factory=list)
    unmatched_candidate: list[int] = field(default_factory=list)

    @property
    def mean_iou(self) -> float:
        """Average IoU over matched pairs (0 when there are no pairs)."""
        if not self.pairs:
            return 0.0
        return float(np.mean([p[2] for p in self.pairs]))

    @property
    def num_matched(self) -> int:
        return len(self.pairs)


def _as_boxes(prediction: Prediction | Sequence[BoundingBox]) -> list[BoundingBox]:
    if isinstance(prediction, Prediction):
        return prediction.valid_boxes
    return [b for b in prediction if b.is_valid]


def greedy_match(
    reference: Prediction | Sequence[BoundingBox],
    candidate: Prediction | Sequence[BoundingBox],
    same_class_only: bool = True,
    min_iou: float = 0.0,
) -> MatchResult:
    """Match each reference box to its best-overlapping candidate box.

    Candidate boxes may be matched to multiple reference boxes; this mirrors
    the per-box ``max`` of Algorithm 1.  A pair is only recorded when its IoU
    strictly exceeds ``min_iou``.
    """
    ref_boxes = _as_boxes(reference)
    cand_boxes = _as_boxes(candidate)

    result = MatchResult()
    used_candidates: set[int] = set()
    for ref_idx, ref_box in enumerate(ref_boxes):
        best_iou = 0.0
        best_idx: Optional[int] = None
        for cand_idx, cand_box in enumerate(cand_boxes):
            if same_class_only and cand_box.cl != ref_box.cl:
                continue
            overlap = iou(ref_box, cand_box)
            if overlap > best_iou:
                best_iou = overlap
                best_idx = cand_idx
        if best_idx is not None and best_iou > min_iou:
            result.pairs.append((ref_idx, best_idx, best_iou))
            used_candidates.add(best_idx)
        else:
            result.unmatched_reference.append(ref_idx)
    result.unmatched_candidate = [
        i for i in range(len(cand_boxes)) if i not in used_candidates
    ]
    return result


def hungarian_match(
    reference: Prediction | Sequence[BoundingBox],
    candidate: Prediction | Sequence[BoundingBox],
    same_class_only: bool = True,
    min_iou: float = 0.0,
) -> MatchResult:
    """Optimal one-to-one matching maximising total IoU.

    Pairs whose IoU does not exceed ``min_iou`` (or which mix classes when
    ``same_class_only`` is set) are discarded after the assignment.
    """
    ref_boxes = _as_boxes(reference)
    cand_boxes = _as_boxes(candidate)
    result = MatchResult()
    if not ref_boxes or not cand_boxes:
        result.unmatched_reference = list(range(len(ref_boxes)))
        result.unmatched_candidate = list(range(len(cand_boxes)))
        return result

    cost = np.zeros((len(ref_boxes), len(cand_boxes)), dtype=float)
    for i, ref_box in enumerate(ref_boxes):
        for j, cand_box in enumerate(cand_boxes):
            if same_class_only and ref_box.cl != cand_box.cl:
                cost[i, j] = 0.0
            else:
                cost[i, j] = iou(ref_box, cand_box)

    row_idx, col_idx = linear_sum_assignment(-cost)
    matched_refs: set[int] = set()
    matched_cands: set[int] = set()
    for i, j in zip(row_idx, col_idx):
        overlap = cost[i, j]
        if overlap > min_iou:
            result.pairs.append((int(i), int(j), float(overlap)))
            matched_refs.add(int(i))
            matched_cands.add(int(j))
    result.unmatched_reference = [
        i for i in range(len(ref_boxes)) if i not in matched_refs
    ]
    result.unmatched_candidate = [
        j for j in range(len(cand_boxes)) if j not in matched_cands
    ]
    return result


def match_predictions(
    reference: Prediction | Sequence[BoundingBox],
    candidate: Prediction | Sequence[BoundingBox],
    strategy: str = "greedy",
    same_class_only: bool = True,
    min_iou: float = 0.0,
) -> MatchResult:
    """Dispatch to :func:`greedy_match` or :func:`hungarian_match`."""
    if strategy == "greedy":
        return greedy_match(reference, candidate, same_class_only, min_iou)
    if strategy == "hungarian":
        return hungarian_match(reference, candidate, same_class_only, min_iou)
    raise ValueError(f"unknown matching strategy: {strategy!r}")
