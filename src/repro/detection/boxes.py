"""Bounding boxes in the paper's centre/length/width representation.

The paper (Section III-A) models a detector output as a tuple
``B := (cl, x, y, l, w)`` — a class label, a centre position ``(x, y)`` in
the image plane, a length ``l`` (extent along the image's first axis) and a
width ``w`` (extent along the second axis).  The reserved class ``⊥``
("background") marks a prediction slot that contains no object; it is
represented here by :data:`BACKGROUND_CLASS`.

Throughout this repository axis 0 of an image array is the *x* axis of the
paper (rows, length ``L``) and axis 1 is the *y* axis (columns, width ``W``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

#: The paper's ``⊥`` class: a prediction slot that does not contain an object.
BACKGROUND_CLASS: int = -1


@dataclass(frozen=True)
class BoundingBox:
    """A single bounding-box prediction ``B = (cl, x, y, l, w)``.

    Parameters
    ----------
    cl:
        Integer class label in ``{0, ..., C-1}`` or :data:`BACKGROUND_CLASS`
        for the paper's ``⊥`` (no object).
    x, y:
        Centre of the box in image coordinates (axis 0 and axis 1).
    l, w:
        Full extent of the box along axis 0 (length) and axis 1 (width).
    score:
        Detector confidence in ``[0, 1]``.  The paper's abstract detector
        does not carry a score, but real detectors (and our simulated ones)
        do; it is used for NMS and metric computation only.
    """

    cl: int
    x: float
    y: float
    l: float
    w: float
    score: float = 1.0

    def __post_init__(self) -> None:
        if self.l < 0 or self.w < 0:
            raise ValueError(
                f"box extents must be non-negative, got l={self.l}, w={self.w}"
            )

    @property
    def is_valid(self) -> bool:
        """True when this is a *valid* bounding box (``cl != ⊥``)."""
        return self.cl != BACKGROUND_CLASS

    @property
    def x_min(self) -> float:
        return self.x - self.l / 2.0

    @property
    def x_max(self) -> float:
        return self.x + self.l / 2.0

    @property
    def y_min(self) -> float:
        return self.y - self.w / 2.0

    @property
    def y_max(self) -> float:
        return self.y + self.w / 2.0

    @property
    def area(self) -> float:
        return self.l * self.w

    @property
    def corners(self) -> tuple[float, float, float, float]:
        """Return ``(x_min, y_min, x_max, y_max)``."""
        return (self.x_min, self.y_min, self.x_max, self.y_max)

    def contains_point(self, px: float, py: float, buffer: float = 0.0) -> bool:
        """Return True if ``(px, py)`` lies inside the box (± ``buffer``).

        This is the membership test used by Algorithm 2 (line 12) with the
        buffer ``ϵ`` surrounding the bounding box.
        """
        return (
            self.x_min - buffer <= px <= self.x_max + buffer
            and self.y_min - buffer <= py <= self.y_max + buffer
        )

    def center_distance(self, other: "BoundingBox") -> float:
        """Euclidean distance between the centres of two boxes."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def with_class(self, cl: int) -> "BoundingBox":
        """Return a copy of this box with a different class label."""
        return replace(self, cl=cl)

    def with_score(self, score: float) -> "BoundingBox":
        """Return a copy of this box with a different confidence score."""
        return replace(self, score=score)

    def scaled(self, factor: float) -> "BoundingBox":
        """Return a copy with length and width scaled by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return replace(self, l=self.l * factor, w=self.w * factor)

    def translated(self, dx: float, dy: float) -> "BoundingBox":
        """Return a copy with the centre shifted by ``(dx, dy)``."""
        return replace(self, x=self.x + dx, y=self.y + dy)

    @staticmethod
    def from_corners(
        cl: int,
        x_min: float,
        y_min: float,
        x_max: float,
        y_max: float,
        score: float = 1.0,
    ) -> "BoundingBox":
        """Build a box from its corner coordinates."""
        if x_max < x_min or y_max < y_min:
            raise ValueError("corner coordinates are inverted")
        return BoundingBox(
            cl=cl,
            x=(x_min + x_max) / 2.0,
            y=(y_min + y_max) / 2.0,
            l=x_max - x_min,
            w=y_max - y_min,
            score=score,
        )

    @staticmethod
    def background() -> "BoundingBox":
        """Return a ``⊥`` (no-object) prediction slot."""
        return BoundingBox(cl=BACKGROUND_CLASS, x=0.0, y=0.0, l=0.0, w=0.0, score=0.0)


def box_area(box: BoundingBox) -> float:
    """Area of a bounding box (``l * w``)."""
    return box.area


def box_intersection_area(a: BoundingBox, b: BoundingBox) -> float:
    """Area of the intersection of two boxes (0 when they do not overlap)."""
    dx = min(a.x_max, b.x_max) - max(a.x_min, b.x_min)
    dy = min(a.y_max, b.y_max) - max(a.y_min, b.y_min)
    if dx <= 0.0 or dy <= 0.0:
        return 0.0
    return dx * dy


def box_union_area(a: BoundingBox, b: BoundingBox) -> float:
    """Area of the union of two boxes."""
    return a.area + b.area - box_intersection_area(a, b)


def boxes_overlap(a: BoundingBox, b: BoundingBox) -> bool:
    """Return True when the two boxes have a non-empty intersection."""
    return box_intersection_area(a, b) > 0.0


def iou(a: BoundingBox, b: BoundingBox) -> float:
    """Intersection-over-union (Jaccard index) of two boxes, in ``[0, 1]``.

    This is the metric used by Algorithm 1 (line 6) of the paper to quantify
    how much a prediction box overlaps with the corresponding box on the
    clean image.  Two empty boxes have an IoU of 0.
    """
    inter = box_intersection_area(a, b)
    if inter == 0.0:
        return 0.0
    union = a.area + b.area - inter
    if union <= 0.0:
        return 0.0
    value = inter / union
    # Guard against floating-point excursions outside [0, 1].
    return min(1.0, max(0.0, value))


def boxes_to_array(boxes) -> np.ndarray:
    """Stack boxes into a float64 array of rows ``(x_min, y_min, x_max,
    y_max, area, cl)``; shape (n, 6).  Used by the vectorised IoU kernels."""
    if not boxes:
        return np.zeros((0, 6), dtype=np.float64)
    return np.array(
        [
            [box.x_min, box.y_min, box.x_max, box.y_max, box.area, float(box.cl)]
            for box in boxes
        ],
        dtype=np.float64,
    )


def iou_matrix(first, second) -> np.ndarray:
    """Pairwise IoU of two box sequences, shape (len(first), len(second)).

    ``iou_matrix(a, b)[i, j]`` equals ``iou(a[i], b[j])`` bit-for-bit: the
    vectorised kernel evaluates the exact same intersection/union formula
    (including the empty-intersection and degenerate-union guards) with the
    same operation order, just across the whole matrix at once.  This is the
    kernel behind Algorithm 1's batched degradation objective.
    """
    a = boxes_to_array(first)
    b = boxes_to_array(second)
    if a.shape[0] == 0 or b.shape[0] == 0:
        return np.zeros((a.shape[0], b.shape[0]), dtype=np.float64)

    dx = np.minimum(a[:, None, 2], b[None, :, 2]) - np.maximum(a[:, None, 0], b[None, :, 0])
    dy = np.minimum(a[:, None, 3], b[None, :, 3]) - np.maximum(a[:, None, 1], b[None, :, 1])
    inter = np.where((dx <= 0.0) | (dy <= 0.0), 0.0, dx * dy)
    union = a[:, None, 4] + b[None, :, 4] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        value = np.where((inter == 0.0) | (union <= 0.0), 0.0, inter / union)
    return np.minimum(1.0, np.maximum(0.0, value))


def clip_box_to_image(
    box: BoundingBox, image_length: int, image_width: int
) -> Optional[BoundingBox]:
    """Clip a box to the image extent ``[0, L] x [0, W]``.

    Returns ``None`` when the clipped box would be empty (fully outside the
    image).  Background boxes are returned unchanged.
    """
    if not box.is_valid:
        return box
    x_min = max(0.0, box.x_min)
    y_min = max(0.0, box.y_min)
    x_max = min(float(image_length), box.x_max)
    y_max = min(float(image_width), box.y_max)
    if x_max <= x_min or y_max <= y_min:
        return None
    return BoundingBox.from_corners(box.cl, x_min, y_min, x_max, y_max, score=box.score)
