"""Non-maximum suppression for detector post-processing."""

from __future__ import annotations

from typing import Sequence

from repro.detection.boxes import BoundingBox, iou
from repro.detection.prediction import Prediction


def non_max_suppression(
    boxes: Sequence[BoundingBox] | Prediction,
    iou_threshold: float = 0.5,
    score_threshold: float = 0.0,
    class_agnostic: bool = False,
) -> Prediction:
    """Greedy non-maximum suppression.

    Boxes are processed in descending score order; a box is kept unless it
    overlaps (IoU above ``iou_threshold``) with an already-kept box of the
    same class (or of any class when ``class_agnostic`` is True).

    Parameters
    ----------
    boxes:
        Candidate boxes (background boxes are ignored).
    iou_threshold:
        Overlap above which a lower-scoring box is suppressed.
    score_threshold:
        Boxes scoring below this value are dropped before suppression.
    class_agnostic:
        When True, suppression happens across classes.
    """
    if not 0.0 <= iou_threshold <= 1.0:
        raise ValueError(f"iou_threshold must be in [0, 1], got {iou_threshold}")

    if isinstance(boxes, Prediction):
        candidates = boxes.valid_boxes
    else:
        candidates = [b for b in boxes if b.is_valid]

    candidates = [b for b in candidates if b.score >= score_threshold]
    candidates.sort(key=lambda b: b.score, reverse=True)

    kept: list[BoundingBox] = []
    for candidate in candidates:
        suppressed = False
        for keeper in kept:
            if not class_agnostic and keeper.cl != candidate.cl:
                continue
            if iou(keeper, candidate) > iou_threshold:
                suppressed = True
                break
        if not suppressed:
            kept.append(candidate)
    return Prediction(kept)
