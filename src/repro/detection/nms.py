"""Non-maximum suppression for detector post-processing.

:func:`non_max_suppression` is the production implementation: it keeps the
exact greedy semantics of the original per-pair Python loop (preserved as
:func:`non_max_suppression_reference`) but precomputes the full pairwise
IoU matrix with the vectorised :func:`~repro.detection.boxes.iou_matrix`
kernel and replaces the inner kept-box scan with one boolean suppression
sweep per kept box.  ``iou_matrix`` is bit-for-bit equal to per-pair
:func:`~repro.detection.boxes.iou` calls, so both implementations make the
same comparisons in the same order and return identical predictions — the
NMS parity suites (``tests/detection/test_nms.py`` and
``tests/property/test_properties_decode.py``) assert exactly that.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.detection.boxes import BoundingBox, iou, iou_matrix
from repro.detection.prediction import Prediction


def _prepare_candidates(
    boxes: Sequence[BoundingBox] | Prediction,
    iou_threshold: float,
    score_threshold: float,
) -> list[BoundingBox]:
    """Validate inputs and return candidates in descending score order.

    ``list.sort`` is stable — equal-score boxes keep their input order
    even with ``reverse=True`` — which is what makes greedy suppression
    of tied boxes deterministic.
    """
    if not 0.0 <= iou_threshold <= 1.0:
        raise ValueError(f"iou_threshold must be in [0, 1], got {iou_threshold}")

    if isinstance(boxes, Prediction):
        candidates = boxes.valid_boxes
    else:
        candidates = [b for b in boxes if b.is_valid]

    candidates = [b for b in candidates if b.score >= score_threshold]
    candidates.sort(key=lambda b: b.score, reverse=True)
    return candidates


def non_max_suppression(
    boxes: Sequence[BoundingBox] | Prediction,
    iou_threshold: float = 0.5,
    score_threshold: float = 0.0,
    class_agnostic: bool = False,
) -> Prediction:
    """Greedy non-maximum suppression.

    Boxes are processed in descending score order; a box is kept unless it
    overlaps (IoU above ``iou_threshold``) with an already-kept box of the
    same class (or of any class when ``class_agnostic`` is True).

    Parameters
    ----------
    boxes:
        Candidate boxes (background boxes are ignored).
    iou_threshold:
        Overlap above which a lower-scoring box is suppressed.
    score_threshold:
        Boxes scoring below this value are dropped before suppression.
    class_agnostic:
        When True, suppression happens across classes.
    """
    candidates = _prepare_candidates(boxes, iou_threshold, score_threshold)
    if len(candidates) <= 1:
        # Nothing can suppress anything; skip the IoU matrix entirely.
        return Prediction(candidates)

    # A kept box only ever suppresses boxes *later* in the score order (an
    # earlier surviving box would have been kept already and, IoU being
    # symmetric, would have suppressed this one first), so one masked sweep
    # over each kept box's matrix row reproduces the greedy scan exactly.
    overlapping = iou_matrix(candidates, candidates) > iou_threshold
    if not class_agnostic:
        classes = np.array([b.cl for b in candidates], dtype=np.int64)
        overlapping &= classes[:, None] == classes[None, :]

    alive = np.ones(len(candidates), dtype=bool)
    kept: list[BoundingBox] = []
    for index, candidate in enumerate(candidates):
        if not alive[index]:
            continue
        kept.append(candidate)
        alive[index + 1 :] &= ~overlapping[index, index + 1 :]
    return Prediction(kept)


def non_max_suppression_reference(
    boxes: Sequence[BoundingBox] | Prediction,
    iou_threshold: float = 0.5,
    score_threshold: float = 0.0,
    class_agnostic: bool = False,
) -> Prediction:
    """Original greedy NMS loop, kept as the executable parity reference.

    Semantics are identical to :func:`non_max_suppression`; the kept-box
    scan calls :func:`~repro.detection.boxes.iou` per pair instead of
    precomputing the pairwise matrix.
    """
    candidates = _prepare_candidates(boxes, iou_threshold, score_threshold)

    kept: list[BoundingBox] = []
    for candidate in candidates:
        suppressed = False
        for keeper in kept:
            if not class_agnostic and keeper.cl != candidate.cl:
                continue
            if iou(keeper, candidate) > iou_threshold:
                suppressed = True
                break
        if not suppressed:
            kept.append(candidate)
    return Prediction(kept)
