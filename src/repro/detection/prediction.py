"""Prediction containers: the output of an object detector on one image."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.detection.boxes import BACKGROUND_CLASS, BoundingBox


@dataclass
class Prediction:
    """The list of bounding-box predictions ``f(img)`` for a single image.

    The paper's abstract detector returns a fixed-length list of ``n``
    predictions, some of which may be background (``⊥``).  This container
    keeps all slots and offers convenient access to the *valid* boxes only,
    which is what Algorithms 1 and 2 iterate over.
    """

    boxes: list[BoundingBox] = field(default_factory=list)

    def __iter__(self) -> Iterator[BoundingBox]:
        return iter(self.boxes)

    def __len__(self) -> int:
        return len(self.boxes)

    def __getitem__(self, index: int) -> BoundingBox:
        return self.boxes[index]

    @property
    def valid_boxes(self) -> list[BoundingBox]:
        """All predictions whose class is not ``⊥``."""
        return [b for b in self.boxes if b.is_valid]

    @property
    def num_valid(self) -> int:
        """Number of valid (non-background) predictions."""
        return len(self.valid_boxes)

    @property
    def classes(self) -> list[int]:
        """Class labels of the valid predictions."""
        return [b.cl for b in self.valid_boxes]

    def boxes_of_class(self, cl: int) -> list[BoundingBox]:
        """All valid predictions of a specific class."""
        return [b for b in self.valid_boxes if b.cl == cl]

    def filtered_by_score(self, threshold: float) -> "Prediction":
        """Return a new prediction keeping only boxes with score >= threshold."""
        return Prediction([b for b in self.valid_boxes if b.score >= threshold])

    def add(self, box: BoundingBox) -> None:
        """Append a bounding box to the prediction."""
        self.boxes.append(box)

    @staticmethod
    def from_boxes(boxes: Iterable[BoundingBox]) -> "Prediction":
        """Build a prediction from an iterable of boxes."""
        return Prediction(list(boxes))

    @staticmethod
    def empty() -> "Prediction":
        """A prediction containing no boxes at all."""
        return Prediction([])

    def sorted_by_score(self, descending: bool = True) -> "Prediction":
        """Return a copy with valid boxes sorted by confidence score."""
        return Prediction(
            sorted(self.valid_boxes, key=lambda b: b.score, reverse=descending)
        )

    def class_histogram(self) -> dict[int, int]:
        """Count valid predictions per class label."""
        histogram: dict[int, int] = {}
        for box in self.valid_boxes:
            histogram[box.cl] = histogram.get(box.cl, 0) + 1
        return histogram

    def summary(self, class_names: Sequence[str] | None = None) -> str:
        """Human-readable one-line summary of the prediction."""
        if not self.valid_boxes:
            return "Prediction(empty)"
        parts = []
        for box in self.valid_boxes:
            if class_names is not None and 0 <= box.cl < len(class_names):
                label = class_names[box.cl]
            else:
                label = f"class{box.cl}"
            parts.append(
                f"{label}@({box.x:.0f},{box.y:.0f}) {box.l:.0f}x{box.w:.0f} "
                f"s={box.score:.2f}"
            )
        return "Prediction[" + "; ".join(parts) + "]"

    def without_background(self) -> "Prediction":
        """Return a copy containing only the valid boxes."""
        return Prediction(self.valid_boxes)

    def count_of_class(self, cl: int) -> int:
        """Number of valid predictions of class ``cl``."""
        if cl == BACKGROUND_CLASS:
            return sum(1 for b in self.boxes if not b.is_valid)
        return len(self.boxes_of_class(cl))
